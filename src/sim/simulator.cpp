#include "sim/simulator.hpp"

#include <utility>

namespace hp2p::sim {

TimerId Simulator::schedule_at(SimTime when, Action action) {
  if (when < now_) when = now_;  // never schedule into the past
  const std::uint64_t seq = next_seq_++;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.when = when;
  s.seq = seq;
  s.action = std::move(action);
  heap_.push(HeapItem{when, seq, slot});
  ++live_events_;
  ++stats_.events_scheduled;
  if (trace_) trace_(TraceEvent{TraceEvent::Kind::kSchedule, seq, when});
  return TimerId{seq, slot};
}

void Simulator::free_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.seq = 0;
  s.action.reset();
  free_slots_.push_back(slot);
  --live_events_;
}

bool Simulator::cancel(TimerId id) {
  if (!id.valid()) return false;
  if (id.slot_ >= slots_.size() || slots_[id.slot_].seq != id.seq_) {
    return false;  // already fired or already cancelled
  }
  const SimTime when = slots_[id.slot_].when;
  free_slot(id.slot_);
  ++stats_.events_cancelled;
  if (trace_) trace_(TraceEvent{TraceEvent::Kind::kCancel, id.seq_, when});
  return true;
}

const Simulator::HeapItem* Simulator::peek_live() {
  while (!heap_.empty() && !slot_live(heap_.top())) {
    heap_.pop();  // cancelled; discard the corpse
    ++stats_.corpses_skipped;
  }
  return heap_.empty() ? nullptr : &heap_.top();
}

bool Simulator::pop_live(HeapItem& out, Action& action) {
  while (!heap_.empty()) {
    const HeapItem top = heap_.top();
    if (!slot_live(top)) {
      heap_.pop();  // cancelled; discard the corpse
      ++stats_.corpses_skipped;
      continue;
    }
    heap_.pop();
    out = top;
    action = std::move(slots_[top.slot].action);
    free_slot(top.slot);
    return true;
  }
  return false;
}

bool Simulator::step() {
  HeapItem item{};
  Action action;
  if (!pop_live(item, action)) return false;
  now_ = item.when;
  ++stats_.events_executed;
  if (trace_) trace_(TraceEvent{TraceEvent::Kind::kFire, item.seq, item.when});
  action();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime deadline) {
  for (const HeapItem* next = peek_live();
       next != nullptr && next->when <= deadline; next = peek_live()) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace hp2p::sim
