#include "sim/simulator.hpp"

#include <utility>

namespace hp2p::sim {

const char* component_name(Component c) {
  switch (c) {
    case Component::kKernel: return "kernel";
    case Component::kTransport: return "transport";
    case Component::kMembership: return "membership";
    case Component::kRing: return "ring";
    case Component::kFlood: return "flood";
    case Component::kBypass: return "bypass";
    case Component::kData: return "data";
    case Component::kReplication: return "replication";
    case Component::kChaos: return "chaos";
    case Component::kAudit: return "audit";
    case Component::kWorkload: return "workload";
    case Component::kSampler: return "sampler";
    case Component::kOther: return "other";
    case Component::kCount_: break;
  }
  return "invalid";
}

TimerId Simulator::schedule_at(SimTime when, Action action) {
  if (when < now_) when = now_;  // never schedule into the past
  const std::uint64_t seq = next_seq_++;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.when = when;
  s.seq = seq;
  s.comp = current_component_;
  s.fp = current_footprint_;
  s.action = std::move(action);
  heap_.push(HeapItem{when, seq, slot});
  ++live_events_;
  ++stats_.events_scheduled;
  if (trace_) trace_(TraceEvent{TraceEvent::Kind::kSchedule, seq, when});
  return TimerId{seq, slot};
}

void Simulator::free_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.seq = 0;
  s.action.reset();
  free_slots_.push_back(slot);
  --live_events_;
}

bool Simulator::cancel(TimerId id) {
  if (!id.valid()) return false;
  if (id.slot_ >= slots_.size() || slots_[id.slot_].seq != id.seq_) {
    return false;  // already fired or already cancelled
  }
  const SimTime when = slots_[id.slot_].when;
  free_slot(id.slot_);
  ++stats_.events_cancelled;
  if (trace_) trace_(TraceEvent{TraceEvent::Kind::kCancel, id.seq_, when});
  return true;
}

const Simulator::HeapItem* Simulator::peek_live() {
  while (!heap_.empty() && !slot_live(heap_.top())) {
    heap_.pop();  // cancelled; discard the corpse
    ++stats_.corpses_skipped;
  }
  return heap_.empty() ? nullptr : &heap_.top();
}

bool Simulator::pop_live(HeapItem& out, Action& action, Component& comp) {
  while (!heap_.empty()) {
    const HeapItem top = heap_.top();
    if (!slot_live(top)) {
      heap_.pop();  // cancelled; discard the corpse
      ++stats_.corpses_skipped;
      continue;
    }
    heap_.pop();
    out = top;
    comp = slots_[top.slot].comp;
    action = std::move(slots_[top.slot].action);
    free_slot(top.slot);
    return true;
  }
  return false;
}

void Simulator::fire(const HeapItem& item, Action& action, Component comp) {
  // Monotone clock: under a nonzero commutation window a policy can fire an
  // event "early", so now() only ever moves forward.  In FIFO mode the pop
  // order guarantees item.when >= now_, making this the plain assignment it
  // always was.
  if (item.when > now_) now_ = item.when;
  ++stats_.events_executed;
  if (trace_) trace_(TraceEvent{TraceEvent::Kind::kFire, item.seq, item.when});
  // The dispatched action inherits the event's tag, so anything it schedules
  // is attributed to the component that set it in motion.  The probe frame
  // brackets exactly the action's execution.
  current_component_ = comp;
  if (probe_ != nullptr) {
    probe_->enter(comp);
    action();
    probe_->leave();
  } else {
    action();
  }
  current_component_ = Component::kKernel;
}

bool Simulator::step() {
  if (policy_ != nullptr) return step_choice();
  HeapItem item{};
  Action action;
  Component comp = Component::kKernel;
  if (!pop_live(item, action, comp)) return false;
  fire(item, action, comp);
  return true;
}

bool Simulator::step_choice() {
  const HeapItem* first = peek_live();
  if (first == nullptr) return false;
  // Gather the co-enabled set: every live event whose fire time falls within
  // the commutation window of the earliest.  The heap pops in (when, seq)
  // order, so staged_ lists the candidates in FIFO order -- index 0 is the
  // event the default kernel would have fired.
  const SimTime limit = first->when + window_;
  staged_.clear();
  cands_.clear();
  while (!heap_.empty()) {
    const HeapItem top = heap_.top();
    if (!slot_live(top)) {
      heap_.pop();  // cancelled; discard the corpse
      ++stats_.corpses_skipped;
      continue;
    }
    if (top.when > limit) break;
    heap_.pop();
    staged_.push_back(top);
  }
  for (const HeapItem& it : staged_) {
    const Slot& s = slots_[it.slot];
    cands_.push_back(CoEnabledEvent{it.seq, it.when, s.comp, s.fp});
  }
  std::size_t pick = policy_->choose(cands_.data(), cands_.size());
  if (pick >= staged_.size()) pick = 0;
  const HeapItem item = staged_[pick];
  for (std::size_t i = 0; i < staged_.size(); ++i) {
    if (i != pick) heap_.push(staged_[i]);
  }
  Action action = std::move(slots_[item.slot].action);
  const Component comp = slots_[item.slot].comp;
  free_slot(item.slot);
  fire(item, action, comp);
  return true;
}

SimTime Simulator::next_event_time() {
  const HeapItem* next = peek_live();
  return next == nullptr ? SimTime::never() : next->when;
}

void Simulator::run() {
  if (probe_ != nullptr) probe_->resync();
  while (step()) {
  }
}

void Simulator::run_until(SimTime deadline) {
  if (probe_ != nullptr) probe_->resync();
  for (const HeapItem* next = peek_live();
       next != nullptr && next->when <= deadline; next = peek_live()) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace hp2p::sim
