#include "sim/simulator.hpp"

#include <utility>

namespace hp2p::sim {

TimerId Simulator::schedule_at(SimTime when, Action action) {
  if (when < now_) when = now_;  // never schedule into the past
  const std::uint64_t seq = next_seq_++;
  heap_.push(HeapItem{when, seq});
  pending_.emplace(seq, std::move(action));
  ++stats_.events_scheduled;
  return TimerId{seq};
}

bool Simulator::cancel(TimerId id) {
  if (!id.valid()) return false;
  const auto erased = pending_.erase(id.seq_);
  if (erased != 0) ++stats_.events_cancelled;
  return erased != 0;
}

bool Simulator::pop_live(HeapItem& out, Action& action) {
  while (!heap_.empty()) {
    const HeapItem top = heap_.top();
    heap_.pop();
    auto it = pending_.find(top.seq);
    if (it == pending_.end()) continue;  // cancelled; skip the corpse
    action = std::move(it->second);
    pending_.erase(it);
    out = top;
    return true;
  }
  return false;
}

bool Simulator::step() {
  HeapItem item{};
  Action action;
  if (!pop_live(item, action)) return false;
  now_ = item.when;
  ++stats_.events_executed;
  action();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime deadline) {
  for (;;) {
    // Peek the next live event without executing it.
    while (!heap_.empty() && !pending_.contains(heap_.top().seq)) heap_.pop();
    if (heap_.empty() || heap_.top().when > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace hp2p::sim
