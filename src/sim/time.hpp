// Simulated time.
//
// Integral microseconds: the event queue never accumulates floating-point
// error, and equality comparisons (needed for deterministic tie-breaking)
// are exact.  This replaces NS2's scheduler clock.
#pragma once

#include <compare>
#include <cstdint>
#include <ostream>

namespace hp2p::sim {

/// A point in simulated time, in microseconds since the start of the run.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t micros) : micros_(micros) {}

  [[nodiscard]] static constexpr SimTime micros(std::int64_t v) {
    return SimTime{v};
  }
  [[nodiscard]] static constexpr SimTime millis(std::int64_t v) {
    return SimTime{v * 1000};
  }
  [[nodiscard]] static constexpr SimTime seconds(double v) {
    return SimTime{static_cast<std::int64_t>(v * 1e6)};
  }
  /// Largest representable time; used as "never" for disabled timers.
  [[nodiscard]] static constexpr SimTime never() {
    return SimTime{INT64_MAX};
  }

  [[nodiscard]] constexpr std::int64_t as_micros() const { return micros_; }
  [[nodiscard]] constexpr double as_millis() const {
    return static_cast<double>(micros_) / 1e3;
  }
  [[nodiscard]] constexpr double as_seconds() const {
    return static_cast<double>(micros_) / 1e6;
  }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.micros_ + b.micros_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.micros_ - b.micros_};
  }
  constexpr SimTime& operator+=(SimTime other) {
    micros_ += other.micros_;
    return *this;
  }

  friend std::ostream& operator<<(std::ostream& os, SimTime t) {
    return os << t.as_millis() << "ms";
  }

 private:
  std::int64_t micros_{0};
};

/// A duration is represented with the same type as a time point; the
/// distinction is contextual (schedule_after takes a duration).
using Duration = SimTime;

/// The one expiry convention: a deadline is expired iff `deadline <= now`.
/// Every lease-like thing (bypass links, cache entries, HELLO liveness)
/// must use this, so boundary semantics can't drift between subsystems.
[[nodiscard]] constexpr bool expired(SimTime deadline, SimTime now) {
  return deadline <= now;
}

}  // namespace hp2p::sim
