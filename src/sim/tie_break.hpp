// Stock tie-break policies for the kernel's pluggable dispatch hook.
//
// The kernel's default (no policy installed) fires equal-timestamp events in
// schedule order, which makes every run observe exactly one of the many
// interleavings a real network permits.  ShuffleTieBreak randomizes that
// choice from a seeded stream -- a cheap standalone stress knob for soaks
// (HP2P_TIEBREAK=shuffle:<seed>) -- while the systematic DFS policies live
// in src/verify/.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace hp2p::sim {

/// Picks uniformly among the co-enabled events.  Deterministic given the
/// seed: the policy is consulted in a fixed order by the (single-threaded)
/// kernel, and singleton choices draw nothing from the stream, so the
/// decision sequence is a pure function of (seed, schedule).
class ShuffleTieBreak final : public TieBreakPolicy {
 public:
  explicit ShuffleTieBreak(std::uint64_t seed) : rng_(seed) {}

  std::size_t choose(const CoEnabledEvent* events, std::size_t n) override {
    (void)events;
    return n <= 1 ? 0 : rng_.index(n);
  }

 private:
  Rng rng_;
};

}  // namespace hp2p::sim
