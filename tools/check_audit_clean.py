#!/usr/bin/env python3
"""Validates audit metrics in a BENCH_*.json report.

Asserts that every `*audit.violations` metric is zero and that at least one
`*audit.runs` metric is positive -- i.e. the invariant auditor actually ran
during the benchmark and found the overlay clean.  Used as a ctest fixture
on the HP2P_AUDIT=1 trace smoke run.

Usage: check_audit_clean.py BENCH_file.json
"""

from __future__ import annotations

import json
import sys


def flatten(prefix: str, value, out: dict) -> None:
    if isinstance(value, dict):
        for k, v in value.items():
            flatten(f"{prefix}.{k}" if prefix else k, v, out)
    else:
        out[prefix] = value


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__)
        return 2
    with open(argv[1], encoding="utf-8") as f:
        doc = json.load(f)
    flat: dict = {}
    flatten("", doc, flat)
    runs = {k: v for k, v in flat.items() if k.endswith("audit.runs")}
    violations = {
        k: v for k, v in flat.items() if k.endswith("audit.violations")
    }
    ok = True
    if not runs:
        print("FAIL: no audit.runs metrics found (auditor never wired in?)")
        ok = False
    elif not any(v > 0 for v in runs.values()):
        print(f"FAIL: auditor never ran: {runs}")
        ok = False
    for key, value in sorted(violations.items()):
        if value != 0:
            print(f"FAIL: {key} = {value} (expected 0)")
            ok = False
    if ok:
        total = sum(int(v) for v in runs.values())
        print(f"audit clean: {total} pass(es), 0 violations ({argv[1]})")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
