#!/usr/bin/env python3
"""Determinism lint for the hp2p simulation sources.

Simulation runs must be pure functions of (config, seed).  This lint rejects
the constructs that historically break that:

  unordered-iter   Iteration over a std::unordered_map/unordered_set
                   variable (range-for or explicit .begin()).  Iteration
                   order depends on hashing/allocation, so any loop that
                   feeds RNG draws, event scheduling, or exported metrics
                   from one leaks the allocator's layout into the run.
                   Use std::map/std::set or sort a snapshot.
  std-rand         std::rand / srand / random_shuffle: global hidden state,
                   unseeded by the run config.  Use hp2p::Rng.
  wallclock        Wall-clock reads (std::chrono system/steady/high-res
                   clocks, time(), gettimeofday): host time must never steer
                   sim behaviour.  Use sim::Simulator::now().
  addr-ordered     std::map/std::set/std::multimap/std::multiset keyed by a
                   raw pointer, or a std::priority_queue of pointers:
                   ordering follows allocation addresses, which differ run
                   to run.  Key by a stable dense index (arena slot, peer
                   id) instead -- the classic bug an index-arena refactor
                   can reintroduce by mixing pointers back in.
  addr-keyed       Pointer-keyed unordered container: hash order follows
                   allocation, so any iteration (now or added later) is
                   nondeterministic, and the unordered-iter rule cannot see
                   through aliases.  Key by stable index; suppress only for
                   provably lookup-only tables.

Escape hatch: a finding is suppressed when the same line or the line above
carries  // lint:allow(<rule>)  (e.g. measurement-only wall-clock reads).

The wallclock escape is additionally gated by an audited allowlist: only the
files in WALLCLOCK_ALLOWED_FILES may carry // lint:allow(wallclock) at all
(the profiler's tick calibration and the harness's phase-timing measurement).
A wallclock escape anywhere else is itself a finding -- extending the
allowlist is a reviewed change to this file, not a drive-by comment.

Usage: lint_determinism.py <dir-or-file>...   (exit 1 when findings remain)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".h"}

UNORDERED_DECL = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s+(\w+)\s*[;{=(]"
)

# rule name -> (regex, message)
PATTERN_RULES = {
    "std-rand": (
        re.compile(r"std::rand\b|\bsrand\s*\(|std::random_shuffle\b"),
        "global C RNG / random_shuffle; use hp2p::Rng",
    ),
    "wallclock": (
        re.compile(
            r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock)"
            r"|\bgettimeofday\s*\("
            r"|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"
        ),
        "wall-clock read in sim code; use sim::Simulator::now()",
    ),
    "addr-ordered": (
        re.compile(
            r"std::(?:map|set|multimap|multiset)\s*<\s*"
            r"(?:const\s+)?\w[\w:]*(?:\s+const)?\s*\*"
            r"|std::priority_queue\s*<\s*(?:const\s+)?\w[\w:]*(?:\s+const)?\s*\*"
        ),
        "pointer-keyed ordered container; ordering follows allocation",
    ),
    "addr-keyed": (
        re.compile(
            r"std::unordered_(?:map|set|multimap|multiset)\s*<\s*"
            r"(?:const\s+)?\w[\w:]*(?:\s+const)?\s*\*"
        ),
        "pointer-keyed unordered container; hash order follows allocation "
        "-- key by a stable index",
    ),
}

ALLOW = re.compile(r"//\s*lint:allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

# The only files where // lint:allow(wallclock) is honored.  Both uses are
# measurement-only (values exported after the run, never fed back into
# event scheduling); anything new must be audited into this list.
WALLCLOCK_ALLOWED_FILES = (
    "src/stats/profiler.hpp",
    "src/stats/profiler.cpp",
    "src/exp/harness.cpp",
)


def wallclock_escape_allowed(path: Path) -> bool:
    posix = path.as_posix()
    return any(posix.endswith(allowed) for allowed in WALLCLOCK_ALLOWED_FILES)


def strip_strings(line: str) -> str:
    """Blank out string/char literals so their contents can't match rules."""
    out = []
    quote = None
    prev = ""
    for ch in line:
        if quote:
            out.append("_")
            if ch == quote and prev != "\\":
                quote = None
            prev = "" if prev == "\\" else ch
        elif ch in "\"'":
            quote = ch
            out.append(ch)
            prev = ch
        else:
            out.append(ch)
            prev = ch
    return "".join(out)


def allowed_rules(lines: list[str], idx: int) -> set[str]:
    rules: set[str] = set()
    for i in (idx, idx - 1):
        if 0 <= i < len(lines):
            m = ALLOW.search(lines[i])
            if m:
                rules.update(r.strip() for r in m.group(1).split(","))
    return rules


def collect_unordered_names(text: str) -> set[str]:
    return set(UNORDERED_DECL.findall(text))


def lint_file(path: Path) -> list[tuple[Path, int, str, str]]:
    text = path.read_text(encoding="utf-8", errors="replace")
    lines = text.splitlines()
    findings = []
    names = collect_unordered_names(text)
    iter_res = []
    if names:
        alt = "|".join(re.escape(n) for n in sorted(names))
        # range-for over the container (with optional member/deref prefix)
        iter_res.append(
            re.compile(
                r"for\s*\([^;()]*?:\s*[\w.\->*]*\b(?:%s)\b\s*\)" % alt
            )
        )
        # explicit iterator walk
        iter_res.append(re.compile(r"\b(?:%s)\b\s*\.\s*begin\s*\(" % alt))
    in_block_comment = False
    for idx, raw in enumerate(lines):
        line = raw
        # Cheap comment stripping: enough for lint purposes.
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        start = line.find("/*")
        if start >= 0 and line.find("*/", start) < 0:
            in_block_comment = True
            line = line[:start]
        code = strip_strings(line).split("//")[0]
        if not code.strip():
            continue
        allowed = allowed_rules(lines, idx)
        if ("wallclock" in allowed_rules([raw], 0)
                and not wallclock_escape_allowed(path)):
            findings.append((
                path,
                idx + 1,
                "wallclock-escape",
                "lint:allow(wallclock) outside the audited allowlist "
                "(see WALLCLOCK_ALLOWED_FILES in lint_determinism.py)",
            ))
        for rule, (rx, msg) in PATTERN_RULES.items():
            if rx.search(code) and rule not in allowed:
                findings.append((path, idx + 1, rule, msg))
        if "unordered-iter" not in allowed:
            for rx in iter_res:
                if rx.search(code):
                    findings.append(
                        (
                            path,
                            idx + 1,
                            "unordered-iter",
                            "iteration over unordered container "
                            "(nondeterministic order)",
                        )
                    )
                    break
    return findings


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__)
        return 2
    files: list[Path] = []
    for arg in argv[1:]:
        p = Path(arg)
        if p.is_dir():
            files.extend(
                f for f in sorted(p.rglob("*")) if f.suffix in SOURCE_SUFFIXES
            )
        elif p.exists():
            files.append(p)
        else:
            print(f"lint_determinism: no such path: {p}", file=sys.stderr)
            return 2
    all_findings = []
    for f in files:
        all_findings.extend(lint_file(f))
    for path, lineno, rule, msg in all_findings:
        print(f"{path}:{lineno}: [{rule}] {msg}")
    if all_findings:
        print(
            f"lint_determinism: {len(all_findings)} finding(s) in "
            f"{len(files)} file(s); suppress intentional uses with "
            "// lint:allow(<rule>)",
            file=sys.stderr,
        )
        return 1
    print(f"lint_determinism: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
