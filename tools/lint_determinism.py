#!/usr/bin/env python3
"""Determinism lint for the hp2p simulation sources.

Simulation runs must be pure functions of (config, seed).  This lint rejects
the constructs that historically break that:

  unordered-iter   Iteration over a std::unordered_map/unordered_set
                   variable (range-for or explicit .begin()).  Iteration
                   order depends on hashing/allocation, so any loop that
                   feeds RNG draws, event scheduling, or exported metrics
                   from one leaks the allocator's layout into the run.
                   Use std::map/std::set or sort a snapshot.
  std-rand         std::rand / srand / random_shuffle: global hidden state,
                   unseeded by the run config.  Use hp2p::Rng.
  wallclock        Wall-clock reads (std::chrono system/steady/high-res
                   clocks, time(), gettimeofday): host time must never steer
                   sim behaviour.  Use sim::Simulator::now().
  addr-ordered     std::map/std::set/std::multimap/std::multiset keyed by a
                   raw pointer, or a std::priority_queue of pointers:
                   ordering follows allocation addresses, which differ run
                   to run.  Key by a stable dense index (arena slot, peer
                   id) instead -- the classic bug an index-arena refactor
                   can reintroduce by mixing pointers back in.
  addr-keyed       Pointer-keyed unordered container: hash order follows
                   allocation, so any iteration (now or added later) is
                   nondeterministic, and the unordered-iter rule cannot see
                   through aliases.  Key by stable index; suppress only for
                   provably lookup-only tables.

Escape hatch: a finding is suppressed when the same line or the line above
carries  // lint:allow(<rule>)  (e.g. measurement-only wall-clock reads).

Escapes are themselves audited:

  stale-escape     Every rule cited by a lint:allow must actually fire on
                   that line or the line below.  An escape that suppresses
                   nothing is a stale artifact of refactored code (or a
                   typo'd rule name rendering the escape inert) and would
                   silently swallow a future real finding at that site.
  stale-allowlist  Every WALLCLOCK_ALLOWED_FILES entry that is part of the
                   scanned set must still carry a wallclock escape;
                   otherwise the allowlist grants latitude nobody uses.

The wallclock escape is additionally gated by an audited allowlist: only the
files in WALLCLOCK_ALLOWED_FILES may carry // lint:allow(wallclock) at all
(the profiler's tick calibration and the harness's phase-timing measurement).
A wallclock escape anywhere else is itself a finding -- extending the
allowlist is a reviewed change to this file, not a drive-by comment.

Usage: lint_determinism.py <dir-or-file>...   (exit 1 when findings remain)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".h"}

UNORDERED_DECL = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s+(\w+)\s*[;{=(]"
)

# rule name -> (regex, message)
PATTERN_RULES = {
    "std-rand": (
        re.compile(r"std::rand\b|\bsrand\s*\(|std::random_shuffle\b"),
        "global C RNG / random_shuffle; use hp2p::Rng",
    ),
    "wallclock": (
        re.compile(
            r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock)"
            r"|\bgettimeofday\s*\("
            r"|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"
        ),
        "wall-clock read in sim code; use sim::Simulator::now()",
    ),
    "addr-ordered": (
        re.compile(
            r"std::(?:map|set|multimap|multiset)\s*<\s*"
            r"(?:const\s+)?\w[\w:]*(?:\s+const)?\s*\*"
            r"|std::priority_queue\s*<\s*(?:const\s+)?\w[\w:]*(?:\s+const)?\s*\*"
        ),
        "pointer-keyed ordered container; ordering follows allocation",
    ),
    "addr-keyed": (
        re.compile(
            r"std::unordered_(?:map|set|multimap|multiset)\s*<\s*"
            r"(?:const\s+)?\w[\w:]*(?:\s+const)?\s*\*"
        ),
        "pointer-keyed unordered container; hash order follows allocation "
        "-- key by a stable index",
    ),
}

ALLOW = re.compile(r"//\s*lint:allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

# Any lint:allow-shaped token in a comment, including ones ALLOW does not
# honor (mid-comment position, typo'd rule).  Used by the stale-escape
# audit: every such token must cite rules that actually fire here.
ESCAPE_TOKEN = re.compile(r"lint:allow\(([^)]*)\)")

ESCAPABLE_RULES = set(PATTERN_RULES) | {"unordered-iter"}

# The only files where // lint:allow(wallclock) is honored.  Both uses are
# measurement-only (values exported after the run, never fed back into
# event scheduling); anything new must be audited into this list.
WALLCLOCK_ALLOWED_FILES = (
    "src/stats/profiler.cpp",
    "src/exp/harness.cpp",
)


def wallclock_escape_allowed(path: Path) -> bool:
    posix = path.as_posix()
    return any(posix.endswith(allowed) for allowed in WALLCLOCK_ALLOWED_FILES)


def strip_strings(line: str) -> str:
    """Blank out string/char literals so their contents can't match rules."""
    out = []
    quote = None
    prev = ""
    for ch in line:
        if quote:
            out.append("_")
            if ch == quote and prev != "\\":
                quote = None
            prev = "" if prev == "\\" else ch
        elif ch in "\"'":
            quote = ch
            out.append(ch)
            prev = ch
        else:
            out.append(ch)
            prev = ch
    return "".join(out)


def allowed_rules(lines: list[str], idx: int) -> set[str]:
    rules: set[str] = set()
    for i in (idx, idx - 1):
        if 0 <= i < len(lines):
            m = ALLOW.search(lines[i])
            if m:
                rules.update(r.strip() for r in m.group(1).split(","))
    return rules


def collect_unordered_names(text: str) -> set[str]:
    return set(UNORDERED_DECL.findall(text))


def lint_file(path: Path) -> tuple[list[tuple[Path, int, str, str]], bool]:
    """Lints one file.  Returns (findings, carries_wallclock_escape)."""
    text = path.read_text(encoding="utf-8", errors="replace")
    lines = text.splitlines()
    names = collect_unordered_names(text)
    iter_res = []
    if names:
        alt = "|".join(re.escape(n) for n in sorted(names))
        # range-for over the container (with optional member/deref prefix)
        iter_res.append(
            re.compile(
                r"for\s*\([^;()]*?:\s*[\w.\->*]*\b(?:%s)\b\s*\)" % alt
            )
        )
        # explicit iterator walk
        iter_res.append(re.compile(r"\b(?:%s)\b\s*\.\s*begin\s*\(" % alt))

    # Pass 1: which rules fire on each line (pre-suppression), and where
    # escape tokens sit.  Fire sets feed both the findings below and the
    # stale-escape audit (a cited rule must fire on the escape's own line
    # or the line below -- the two positions an escape is honored for).
    fires: list[set[str]] = []
    escapes: list[tuple[int, list[str]]] = []
    in_block_comment = False
    for idx, raw in enumerate(lines):
        line = raw
        # Cheap comment stripping: enough for lint purposes.
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                fires.append(set())
                continue
            line = line[end + 2:]
            in_block_comment = False
        start = line.find("/*")
        if start >= 0 and line.find("*/", start) < 0:
            in_block_comment = True
            line = line[:start]
        stripped = strip_strings(line)
        code = stripped.split("//")[0]
        comment = stripped[len(code):]
        fired: set[str] = set()
        if code.strip():
            for rule, (rx, _msg) in PATTERN_RULES.items():
                if rx.search(code):
                    fired.add(rule)
            for rx in iter_res:
                if rx.search(code):
                    fired.add("unordered-iter")
                    break
        fires.append(fired)
        m = ESCAPE_TOKEN.search(comment)
        if m:
            escapes.append(
                (idx, [r.strip() for r in m.group(1).split(",") if r.strip()])
            )

    # Pass 2: findings = fires minus suppressions, plus the escape audits.
    findings = []
    for idx, fired in enumerate(fires):
        allowed = allowed_rules(lines, idx)
        if ("wallclock" in allowed_rules([lines[idx]], 0)
                and not wallclock_escape_allowed(path)):
            findings.append((
                path,
                idx + 1,
                "wallclock-escape",
                "lint:allow(wallclock) outside the audited allowlist "
                "(see WALLCLOCK_ALLOWED_FILES in lint_determinism.py)",
            ))
        for rule in sorted(fired - allowed):
            if rule == "unordered-iter":
                msg = "iteration over unordered container " \
                      "(nondeterministic order)"
            else:
                msg = PATTERN_RULES[rule][1]
            findings.append((path, idx + 1, rule, msg))

    saw_wallclock_escape = False
    for idx, cited in escapes:
        below = fires[idx + 1] if idx + 1 < len(fires) else set()
        for rule in cited:
            if rule == "wallclock":
                saw_wallclock_escape = True
            if rule not in ESCAPABLE_RULES:
                findings.append((
                    path,
                    idx + 1,
                    "stale-escape",
                    f"lint:allow cites unknown rule '{rule}'",
                ))
            elif rule not in fires[idx] and rule not in below:
                findings.append((
                    path,
                    idx + 1,
                    "stale-escape",
                    f"lint:allow({rule}) suppresses nothing here -- the "
                    "rule fires neither on this line nor the one below",
                ))
    return findings, saw_wallclock_escape


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__)
        return 2
    files: list[Path] = []
    for arg in argv[1:]:
        p = Path(arg)
        if p.is_dir():
            files.extend(
                f for f in sorted(p.rglob("*")) if f.suffix in SOURCE_SUFFIXES
            )
        elif p.exists():
            files.append(p)
        else:
            print(f"lint_determinism: no such path: {p}", file=sys.stderr)
            return 2
    all_findings = []
    wallclock_escapes: dict[str, bool] = {}
    for f in files:
        findings, saw_wallclock = lint_file(f)
        all_findings.extend(findings)
        posix = f.as_posix()
        wallclock_escapes[posix] = wallclock_escapes.get(posix, False) \
            or saw_wallclock
    # stale-allowlist: an allowlisted file that is part of this scan but
    # carries no wallclock escape grants latitude nobody uses -- prune it.
    for allowed in WALLCLOCK_ALLOWED_FILES:
        scanned = [p for p in wallclock_escapes if p.endswith(allowed)]
        for p in scanned:
            if not wallclock_escapes[p]:
                all_findings.append((
                    Path(p),
                    1,
                    "stale-allowlist",
                    f"'{allowed}' is in WALLCLOCK_ALLOWED_FILES but carries "
                    "no lint:allow(wallclock) escape",
                ))
    for path, lineno, rule, msg in all_findings:
        print(f"{path}:{lineno}: [{rule}] {msg}")
    if all_findings:
        print(
            f"lint_determinism: {len(all_findings)} finding(s) in "
            f"{len(files)} file(s); suppress intentional uses with "
            "// lint:allow(<rule>)",
            file=sys.stderr,
        )
        return 1
    print(f"lint_determinism: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
