#!/usr/bin/env python3
"""Threshold-gated diff of two BENCH_*.json reports.

Compares the numeric leaves under `metrics` (flattened to dotted keys) of a
baseline report against a candidate report and fails when a performance
metric regressed past its tolerance.  Which direction is "worse" and how
much slack is allowed follow from the key's suffix:

  suffix                          direction      default tolerance
  .events_per_sec                 higher-better  -15%
  .peak_rss_bytes                 lower-better   +30%
  .bytes_per_peer                 lower-better   +30%
  .routing_table_bytes            lower-better   +30%
  .p99 / .p95 (latency summaries) lower-better   +10%

Everything else is informational: it is diffed and printed with --verbose
but never gates.  A gated key present in the baseline but missing from the
candidate is a failure (a silently dropped metric must not pass the gate);
keys only in the candidate are ignored (new metrics are fine).

Wall-clock-derived metrics (events_per_sec) are inherently noisy, so the
gate is meant to catch real regressions (the acceptance bar is a 20% drop),
not single-percent drift.  --slack N multiplies every tolerance for noisier
environments.

Usage:
  bench_compare.py BASELINE.json CANDIDATE.json [--slack N] [--verbose]
  bench_compare.py --self-test

Exit codes: 0 pass, 1 regression(s), 2 usage/input error.
"""

from __future__ import annotations

import argparse
import json
import sys

# (suffix, higher_is_better, relative tolerance)
GATES = [
    (".events_per_sec", True, 0.15),
    (".peak_rss_bytes", False, 0.30),
    (".bytes_per_peer", False, 0.30),
    (".routing_table_bytes", False, 0.30),
    (".p99", False, 0.10),
    (".p95", False, 0.10),
]


def flatten(node, prefix=""):
    """Flattens nested dicts to {dotted.key: numeric leaf}."""
    out = {}
    if isinstance(node, dict):
        for key, value in node.items():
            out.update(flatten(value, f"{prefix}.{key}" if prefix else key))
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out[prefix] = float(node)
    return out


def gate_for(key):
    for suffix, higher, tol in GATES:
        if key.endswith(suffix):
            return higher, tol
    return None


def compare(baseline, candidate, slack=1.0, verbose=False, out=sys.stdout):
    """Returns the list of failure strings (empty = gate passes)."""
    base = flatten(baseline.get("metrics", {}))
    cand = flatten(candidate.get("metrics", {}))
    failures = []
    for key in sorted(base):
        gate = gate_for(key)
        if gate is None:
            if verbose and key in cand and cand[key] != base[key]:
                print(f"  info {key}: {base[key]:g} -> {cand[key]:g}",
                      file=out)
            continue
        higher_is_better, tol = gate
        tol *= slack
        if key not in cand:
            failures.append(f"{key}: present in baseline, missing from "
                            "candidate")
            continue
        b, c = base[key], cand[key]
        if b == 0:
            continue  # nothing to express a relative change against
        change = (c - b) / abs(b)
        worse = -change if higher_is_better else change
        status = "FAIL" if worse > tol else "ok"
        arrow = f"{key}: {b:g} -> {c:g} ({change:+.1%}, allow " \
                f"{'-' if higher_is_better else '+'}{tol:.0%})"
        if status == "FAIL":
            failures.append(arrow)
        if verbose or status == "FAIL":
            print(f"  {status:4s} {arrow}", file=out)
    return failures


def self_test():
    """Exercises the gate against synthetic report pairs."""
    def report(eps=1e6, rss=100e6, p99=12.0):
        return {"metrics": {"n1000": {
            "events_per_sec": eps,
            "peak_rss_bytes": rss,
            "lookup_latency_ms": {"p99": p99},
            "lookup_hops": {"mean": 3.0},
        }}}

    import io
    sink = io.StringIO()
    cases = [
        ("identical reports pass", report(), report(), True),
        ("10% events/sec drop within tolerance", report(), report(eps=0.9e6),
         True),
        ("20% events/sec regression caught", report(), report(eps=0.8e6),
         False),
        ("events/sec improvement passes", report(), report(eps=2e6), True),
        ("50% RSS growth caught", report(), report(rss=150e6), False),
        ("RSS shrink passes", report(), report(rss=50e6), True),
        ("20% p99 latency regression caught", report(), report(p99=14.4),
         False),
        ("ungated metric change ignored", report(),
         {"metrics": {"n1000": {**report()["metrics"]["n1000"],
                                "lookup_hops": {"mean": 9.0}}}}, True),
        ("dropped gated metric caught", report(),
         {"metrics": {"n1000": {"events_per_sec": 1e6}}}, False),
        ("slack widens tolerance", report(), report(eps=0.8e6), True, 2.0),
    ]
    failed = 0
    for case in cases:
        name, base, cand, want_pass = case[:4]
        slack = case[4] if len(case) > 4 else 1.0
        got_pass = not compare(base, cand, slack=slack, out=sink)
        ok = got_pass == want_pass
        failed += 0 if ok else 1
        print(f"  {'ok' if ok else 'FAIL'}: {name}")
    if failed:
        print(f"self-test: {failed} case(s) failed", file=sys.stderr)
        return 1
    print(f"self-test: all {len(cases)} cases passed")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="Threshold-gated diff of two BENCH_*.json reports")
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("candidate", nargs="?")
    parser.add_argument("--slack", type=float, default=1.0,
                        help="multiply every tolerance (noisy environments)")
    parser.add_argument("--verbose", action="store_true",
                        help="print every compared key, not just failures")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in gate test cases and exit")
    args = parser.parse_args(argv[1:])

    if args.self_test:
        return self_test()
    if not args.baseline or not args.candidate:
        parser.print_usage(sys.stderr)
        return 2
    try:
        with open(args.baseline, encoding="utf-8") as f:
            baseline = json.load(f)
        with open(args.candidate, encoding="utf-8") as f:
            candidate = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_compare: {err}", file=sys.stderr)
        return 2

    print(f"bench_compare: {args.baseline} -> {args.candidate} "
          f"(slack x{args.slack:g})")
    failures = compare(baseline, candidate, slack=args.slack,
                       verbose=args.verbose)
    if failures:
        print(f"bench_compare: {len(failures)} regression(s)",
              file=sys.stderr)
        return 1
    print("bench_compare: gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
