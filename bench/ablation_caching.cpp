// Ablation: the Section 7 caching scheme (the paper's stated future work).
//
// When an item is extremely popular, the hosting peer answers every request.
// With caching on, every successful requester becomes a surrogate: origins
// answer repeats from their own cache and ring forwarders intercept queries
// they can serve.  Metrics: the hosting hot-spot's load (max answers served
// by one peer), mean latency, and total contacts.
#include <cstdio>

#include "bench_util.hpp"
#include "exp/metrics_collect.hpp"
#include "stats/table.hpp"

using namespace hp2p;

int main() {
  auto scale = bench::scale_from_env();
  scale.items = std::min<std::size_t>(scale.items, 200);  // hot catalogue
  bench::Reporter reporter{"ablation_caching", scale};
  bench::print_header(
      "Ablation -- Section 7 caching scheme on/off (Zipf-1.2 workload)",
      "caching spreads a popular item's load across surrogate peers: the "
      "hottest peer answers far fewer requests",
      scale);

  stats::Table table{{"caching", "max_peer_load", "cache_hits", "latency_ms",
                      "contacted_per_lookup"}};
  for (bool enabled : {false, true}) {
    auto cfg = bench::base_config(scale, 0);
    cfg.hybrid.ps = 0.7;
    cfg.hybrid.ttl = 6;
    cfg.hybrid.enable_caching = enabled;
    cfg.hybrid.cache_capacity = 8;
    cfg.zipf_exponent = 1.2;
    // Pace the repeats so caches are warm when they arrive.
    cfg.op_spacing = sim::SimTime::millis(50);
    const auto r = exp::run_hybrid_experiment(cfg);
    table.row()
        .cell(enabled ? "on" : "off")
        .cell(r.max_answers_served)
        .cell(r.cache_hits)
        .cell(r.lookup_latency_ms.mean(), 1)
        .cell(static_cast<double>(r.connum()) /
                  static_cast<double>(r.lookups.issued),
              2);
    exp::collect_run_result(reporter.metrics(),
                            enabled ? "caching_on" : "caching_off", r);
  }
  table.print(std::cout);
  reporter.add_table("ablation_caching", table);
  return reporter.write() ? 0 : 1;
}
