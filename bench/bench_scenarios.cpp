// Production-traffic scenario suite: the four workload::Workload scenarios
// (diurnal curve, rotating hot-key storm, interest-targeted flash crowd,
// hash-verified content swarm) each replayed against a live hybrid system
// under its preset chaos schedule, with the MUST/MAY oracle and the overlay
// auditor judging every lookup.
//
// The hot-key storm runs twice -- Section 7 caching off, then on -- so the
// report carries the max-peer-load ablation under key churn (the sequel to
// ablation_caching's static-hot-key 520 -> 38 result).
//
// Exit status is a gate: any oracle/audit violation in any scenario fails
// the binary.  The per-scenario verdicts land in the schema-v5 `scenarios`
// array of BENCH_scenarios.json.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "stats/table.hpp"
#include "workload/scenario_runner.hpp"

using namespace hp2p;

namespace {

void export_metrics(bench::Reporter& reporter, const std::string& prefix,
                    const workload::ScenarioReport& r) {
  auto& m = reporter.metrics();
  m.set(prefix + ".availability", stats::JsonValue{r.availability});
  m.set(prefix + ".mean_latency_ms", stats::JsonValue{r.mean_latency_ms});
  m.set(prefix + ".max_peer_load", stats::JsonValue{r.max_peer_load});
  m.set(prefix + ".load_skew", stats::JsonValue{r.load_skew});
  m.set(prefix + ".cache_hits", stats::JsonValue{r.cache_hits});
  m.set(prefix + ".lookups_issued",
        stats::JsonValue{std::uint64_t{r.lookups_issued}});
  m.set(prefix + ".must_failed",
        stats::JsonValue{std::uint64_t{r.must_failed}});
  m.set(prefix + ".wave_must_failed",
        stats::JsonValue{std::uint64_t{r.wave_must_failed}});
  m.set(prefix + ".value_mismatches",
        stats::JsonValue{std::uint64_t{r.value_mismatches}});
  m.set(prefix + ".crashes", stats::JsonValue{std::uint64_t{r.crashes}});
  m.set(prefix + ".violations",
        stats::JsonValue{static_cast<std::uint64_t>(r.violations.size())});
}

}  // namespace

int main() {
  auto scale = bench::scale_from_env();
  // Scenario windows simulate minutes of traffic per run; 240 peers keeps
  // the five-run suite laptop-fast while staying well above the preset
  // populations.  Larger HP2P_PEERS values are clamped (and said so).
  const auto peers = std::min<std::uint32_t>(scale.peers, 240);
  if (peers < scale.peers) {
    std::printf("note: scenario suite clamps HP2P_PEERS=%u to %u\n",
                scale.peers, peers);
    scale.peers = peers;
  }
  bench::Reporter reporter{"scenarios", scale};
  bench::print_header(
      "Scenario suite -- production traffic under chaos schedules",
      "the hybrid overlay holds availability through diurnal load, hot-key "
      "storms, flash crowds, and tracker-failover swarms with zero "
      "oracle-MUST failures",
      scale);

  struct Run {
    const char* label;
    workload::ScenarioConfig cfg;
  };
  std::vector<Run> runs;
  runs.push_back({"diurnal", workload::diurnal_scenario(scale.seed)});
  runs.push_back(
      {"hot_key_nocache",
       workload::hot_key_storm_scenario(scale.seed, /*caching=*/false)});
  runs.push_back(
      {"hot_key_cached",
       workload::hot_key_storm_scenario(scale.seed, /*caching=*/true)});
  runs.push_back({"flash_crowd", workload::flash_crowd_scenario(scale.seed)});
  runs.push_back({"swarm", workload::swarm_scenario(scale.seed)});

  stats::Table table{{"scenario", "lookups", "availability", "latency_ms",
                      "max_load", "load_skew", "crashes", "must_failed",
                      "violations"}};
  bool clean = true;
  std::uint64_t hot_load_off = 0;
  std::uint64_t hot_load_on = 0;
  std::uint64_t hot_hits_on = 0;
  std::vector<workload::ScenarioReport> reports;
  for (Run& run : runs) {
    run.cfg.num_peers = peers;
    run.cfg.hosts = std::max(run.cfg.hosts, peers * 2);
    auto r = workload::run_scenario(run.cfg);
    r.scenario = run.label;  // disambiguates the two hot-key runs in the JSON
    table.row()
        .cell(std::string{run.label})
        .cell(std::uint64_t{r.lookups_issued})
        .cell(r.availability, 4)
        .cell(r.mean_latency_ms, 1)
        .cell(r.max_peer_load)
        .cell(r.load_skew, 2)
        .cell(std::uint64_t{r.crashes})
        .cell(std::uint64_t{r.must_failed} + r.wave_must_failed)
        .cell(static_cast<std::uint64_t>(r.violations.size()));
    export_metrics(reporter, run.label, r);
    reporter.add_scenario(r.to_json());
    clean = clean && r.clean();
    if (std::string{run.label} == "hot_key_nocache") {
      hot_load_off = r.max_peer_load;
    }
    if (std::string{run.label} == "hot_key_cached") {
      hot_load_on = r.max_peer_load;
      hot_hits_on = r.cache_hits;
    }
    for (const auto& v : r.violations) {
      std::printf("violation[%s] %s: %s (a=%llu b=%llu)\n", run.label,
                  v.kind, v.detail.c_str(),
                  static_cast<unsigned long long>(v.a),
                  static_cast<unsigned long long>(v.b));
    }
    reports.push_back(r);
  }
  table.print(std::cout);
  reporter.add_table("scenarios", table);

  // Paper-style claim lines, one per scenario (recorded verbatim in
  // bench_paper_scale.txt by the paper-scale pass).
  const auto& diurnal = reports[0];
  const auto& crowd = reports[3];
  const auto& swarm = reports[4];
  std::printf("claim[diurnal]: availability %.4f, mean latency %.0f ms, "
              "load skew %.2f through an s-peer crash storm + loss burst "
              "(%u MUST-failures)\n",
              diurnal.availability, diurnal.mean_latency_ms,
              diurnal.load_skew,
              diurnal.must_failed + diurnal.wave_must_failed);
  std::printf("claim[hot_key_storm]: under rotating-hot-key churn the "
              "Section 7 cache bounds the hottest peer to %llu answers vs "
              "%llu uncached (%llu cache hits)\n",
              static_cast<unsigned long long>(hot_load_on),
              static_cast<unsigned long long>(hot_load_off),
              static_cast<unsigned long long>(hot_hits_on));
  std::printf("claim[flash_crowd]: a %u-peer interest-targeted join burst "
              "into one segment is absorbed at availability %.4f "
              "(%u MUST-failures)\n",
              crowd.joins, crowd.availability,
              crowd.must_failed + crowd.wave_must_failed);
  std::printf("claim[content_swarm]: swarm completed %u of %u hash-verified "
              "piece downloads through a tracker crash storm (%u crashes, "
              "%u integrity mismatches, %u MUST-failures)\n",
              swarm.lookups_succeeded, swarm.lookups_issued, swarm.crashes,
              swarm.value_mismatches,
              swarm.must_failed + swarm.wave_must_failed);

  if (!reporter.write()) return 1;
  return clean ? 0 : 2;
}
