// Head-to-head: pure Chord (structured baseline), pure Gnutella
// (unstructured baseline), and the hybrid system at two p_s values, all on
// the same workload -- the framing experiment of the whole paper
// (Section 1: "neither ... can provide efficient, flexible, and robust
// service alone").
#include <cstdio>

#include "bench_util.hpp"
#include "exp/baselines.hpp"
#include "exp/metrics_collect.hpp"
#include "stats/table.hpp"

using namespace hp2p;

int main() {
  auto scale = bench::scale_from_env();
  bench::Reporter reporter{"baseline_comparison", scale};
  bench::print_header(
      "Baseline comparison -- Chord vs Gnutella vs hybrid",
      "structured: zero failures, long walks & joins; unstructured: instant "
      "joins, TTL misses; hybrid: tunable middle",
      scale);

  stats::Table table{{"system", "join_ms", "lookup_ms", "failure",
                      "connum/lookup", "messages"}};

  auto add_row = [&](const char* name, const char* key,
                     const exp::RunResult& r) {
    table.row()
        .cell(name)
        .cell(r.join_latency_ms.mean(), 1)
        .cell(r.lookup_latency_ms.mean(), 1)
        .cell(r.lookups.failure_ratio(), 4)
        .cell(static_cast<double>(r.connum()) /
                  static_cast<double>(std::max<std::uint64_t>(
                      r.lookups.issued, 1)),
              1)
        .cell(r.network.messages_sent);
    exp::collect_run_result(reporter.metrics(), key, r);
  };

  {
    exp::ChordRunConfig cfg;
    cfg.seed = scale.seed;
    cfg.num_peers = scale.peers;
    cfg.num_items = scale.items;
    cfg.num_lookups = scale.lookups;
    cfg.chord.routing = chord::RoutingMode::kRing;
    add_row("chord (ring routing)", "chord_ring",
            exp::run_chord_experiment(cfg));
    cfg.chord.routing = chord::RoutingMode::kFinger;
    cfg.maintenance = true;
    cfg.chord.stabilize_interval = sim::SimTime::millis(500);
    add_row("chord (finger routing)", "chord_finger",
            exp::run_chord_experiment(cfg));
  }
  {
    exp::GnutellaRunConfig cfg;
    cfg.seed = scale.seed;
    cfg.num_peers = scale.peers;
    cfg.num_items = scale.items;
    cfg.num_lookups = scale.lookups;
    cfg.gnutella.ttl = 5;
    cfg.gnutella.neighbors_per_join = 3;
    add_row("gnutella (flood TTL=5)", "gnutella",
            exp::run_gnutella_experiment(cfg));
  }
  for (double ps : {0.5, 0.7}) {
    auto cfg = bench::base_config(scale, 0);
    cfg.hybrid.ps = ps;
    cfg.hybrid.ttl = 6;
    const auto r = exp::run_hybrid_experiment(cfg);
    const std::string name = "hybrid (p_s=" + stats::format_fixed(ps, 1) + ")";
    const std::string key = "hybrid_ps_" + bench::metric_num(ps);
    add_row(name.c_str(), key.c_str(), r);
  }
  table.print(std::cout);
  reporter.add_table("baseline_comparison", table);
  std::printf("\nchord joins pay a full ring walk and chord lookups contact "
              "~N/2 peers (ring mode);\ngnutella joins are constant-time but "
              "flooding misses rare items; the hybrid\ninterpolates, and "
              "p_s picks the point on the trade-off curve.\n");
  return reporter.write() ? 0 : 1;
}
