// Scale ceiling: pushes the full stack -- hierarchical on-demand underlay
// routing, slot-arena event kernel, inline-closure transport -- far past the
// paper's 1,000-node runs and reports the numbers that prove the million-peer
// trajectory: peers, events/sec, peak RSS, bytes/peer, wall-clock, and the
// underlay routing-table footprint (O(V), where the old all-pairs tables
// were O(V^2)).
//
// The default run climbs a quick three-rung ladder; pin a single rung (e.g.
// the 100k soak) with HP2P_PEERS:
//
//   ./bench_scale                     # 1k / 5k / 20k ladder, laptop-fast
//   HP2P_PEERS=100000 ./bench_scale   # the 100k-peer soak
//
// Workload per rung: ~1% t-peers (ps = 0.99) with finger routing and a
// t-peers-first build -- the regime Section 4 argues for at scale, where
// ring state stays O(log N_t) and the s-networks absorb the mass.  Items
// and lookups track the peer count (1 per 20 peers) unless pinned via
// HP2P_ITEMS / HP2P_LOOKUPS.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/proc_stats.hpp"
#include "common/rng.hpp"
#include "exp/metrics_collect.hpp"
#include "net/transit_stub.hpp"
#include "net/underlay.hpp"
#include "stats/table.hpp"

using namespace hp2p;

namespace {

const char* mode_name(net::RoutingMode mode) {
  switch (mode) {
    case net::RoutingMode::kDense: return "dense";
    case net::RoutingMode::kHierarchical: return "hierarchical";
    case net::RoutingMode::kAuto: break;
  }
  return "auto";
}

struct UnderlayFootprint {
  net::RoutingMode mode;
  std::size_t routing_bytes;
  std::uint32_t hosts;
};

/// Rebuilds the underlay exactly as the harness does (same params, same RNG
/// stream) to report the routing mode and table footprint; RunResult does
/// not carry the underlay itself.
UnderlayFootprint underlay_footprint(std::uint64_t seed, std::uint32_t peers) {
  Rng rng{seed};
  Rng topo_rng = rng.fork(1);
  const auto params = net::TransitStubParams::for_total_nodes(peers + 1);
  net::Underlay underlay{net::generate_transit_stub(params, topo_rng),
                         topo_rng};
  return {underlay.routing_mode(), underlay.routing_memory_bytes(),
          underlay.num_hosts()};
}

exp::RunConfig rung_config(const bench::Scale& scale, std::uint32_t peers) {
  auto cfg = bench::base_config(scale, 0);
  cfg.num_peers = peers;
  if (env_or("HP2P_ITEMS", std::int64_t{0}) == 0) {
    cfg.num_items = std::max<std::size_t>(1000, peers / 20);
  }
  if (env_or("HP2P_LOOKUPS", std::int64_t{0}) == 0) {
    cfg.num_lookups = std::max<std::size_t>(1000, peers / 20);
  }
  cfg.hybrid.ps = 0.99;
  cfg.hybrid.ttl = 8;  // delta=3 trees of ~100 s-peers need flood radius 8
  cfg.hybrid.t_routing = hybrid::TRouting::kFinger;
  cfg.tpeers_first = true;
  return cfg;
}

}  // namespace

int main() {
  auto scale = bench::scale_from_env();
  std::vector<std::uint32_t> ladder;
  if (env_or("HP2P_PEERS", std::int64_t{0}) != 0) {
    ladder.push_back(scale.peers);
  } else {
    ladder = {1000, 5000, 20000};
    scale.peers = ladder.back();
  }

  bench::Reporter reporter{"scale", scale};
  bench::print_header(
      "Scale ceiling -- events/sec, peak RSS, bytes/peer vs. peer count",
      "hierarchical routing + arena'd event loop keep memory O(V) and "
      "throughput flat past 10k peers",
      scale);

  stats::Table table{{"peers", "routing", "routing_MB", "events", "Mev/s",
                      "wall_s", "peak_rss_MB", "B/peer", "lookup_ok"}};
  // Ascending rungs: VmHWM is a process-wide high-water mark, so each rung's
  // reading is dominated by its own (largest-so-far) run.
  const bool profiling = bench::profile_from_env();
  for (const std::uint32_t peers : ladder) {
    const auto fp = underlay_footprint(scale.seed, peers);
    auto cfg = rung_config(scale, peers);
    // HP2P_PROFILE=1 profiles the ladder's top rung (the interesting one):
    // component attribution plus 1 s-period occupancy gauges (arena slots,
    // event backlog, live heap bytes, VmRSS) in the report's timeseries.
    stats::Profiler profiler;
    const bool profile_rung = profiling && peers == ladder.back();
    if (profile_rung) {
      cfg.profiler = &profiler;
      cfg.sample_period = sim::SimTime::seconds(1);
    }
    const auto r = exp::run_hybrid_experiment(cfg);

    double wall_ms = 0;
    double sim_ms = 0;
    for (const auto& phase : r.phases) {
      wall_ms += phase.wall_ms;
      sim_ms += phase.sim_ms;
    }
    const double events_per_sec =
        wall_ms > 0
            ? static_cast<double>(r.sim_stats.events_executed) * 1000.0 / wall_ms
            : 0;
    const std::uint64_t peak_rss = peak_rss_bytes();
    const double bytes_per_peer =
        static_cast<double>(peak_rss) / static_cast<double>(peers);
    const double lookup_ok =
        r.lookups.issued > 0 ? static_cast<double>(r.lookups.succeeded) /
                                   static_cast<double>(r.lookups.issued)
                             : 0;

    table.row()
        .cell(std::uint64_t{peers})
        .cell(mode_name(fp.mode))
        .cell(static_cast<double>(fp.routing_bytes) / (1024.0 * 1024.0), 2)
        .cell(r.sim_stats.events_executed)
        .cell(events_per_sec / 1e6, 2)
        .cell(wall_ms / 1000.0, 2)
        .cell(static_cast<double>(peak_rss) / (1024.0 * 1024.0), 1)
        .cell(bytes_per_peer, 0)
        .cell(lookup_ok, 3);

    const std::string key = "n" + std::to_string(peers);
    exp::collect_run_result(reporter.metrics(), key, r);
    auto& m = reporter.metrics();
    m.set(key + ".routing_mode", stats::JsonValue{std::string{mode_name(fp.mode)}});
    m.set(key + ".routing_table_bytes",
          stats::JsonValue{static_cast<std::uint64_t>(fp.routing_bytes)});
    m.set(key + ".hosts", stats::JsonValue{std::uint64_t{fp.hosts}});
    m.set(key + ".events_per_sec", stats::JsonValue{events_per_sec});
    m.set(key + ".wall_ms_total", stats::JsonValue{wall_ms});
    m.set(key + ".sim_ms_total", stats::JsonValue{sim_ms});
    m.set(key + ".peak_rss_bytes", stats::JsonValue{peak_rss});
    m.set(key + ".bytes_per_peer", stats::JsonValue{bytes_per_peer});
    if (profile_rung) {
      if (r.timeseries) reporter.add_timeseries(*r.timeseries);
      bench::report_profile(reporter, profiler);
    }
  }
  table.print(std::cout);
  reporter.add_table("scale_ladder", table);

  stats::JsonValue rungs = stats::JsonValue::array();
  for (const std::uint32_t peers : ladder) {
    rungs.push_back(stats::JsonValue{std::uint64_t{peers}});
  }
  reporter.config().set("ladder", std::move(rungs));
  return reporter.write() ? 0 : 1;
}
