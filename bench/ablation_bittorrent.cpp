// Ablation: Gnutella-style flooding s-networks vs BitTorrent-style trackers
// (Section 5.5).
//
// Tracker mode answers each lookup with the exact holder: no flooding and
// no TTL-induced misses, at the price of tracker state on every t-peer.
#include <cstdio>

#include "bench_util.hpp"
#include "exp/metrics_collect.hpp"
#include "stats/table.hpp"

using namespace hp2p;

int main() {
  auto scale = bench::scale_from_env();
  bench::Reporter reporter{"ablation_bittorrent", scale};
  bench::print_header(
      "Ablation -- Gnutella-style flooding vs BitTorrent-style trackers",
      "tracker mode: near-zero failure, O(1) contacts per lookup, no "
      "flooding traffic",
      scale);

  stats::Table table{{"style", "latency_ms", "failure",
                      "contacted_per_lookup", "query_msgs"}};
  struct Variant {
    const char* name;
    const char* key;  // metric-tree prefix for this variant's run
    hybrid::SNetworkStyle style;
    unsigned ttl;
  };
  const Variant variants[] = {
      {"flooding tree, TTL=2", "tree_ttl2", hybrid::SNetworkStyle::kTree, 2},
      {"flooding tree, TTL=6", "tree_ttl6", hybrid::SNetworkStyle::kTree, 6},
      {"tracker (BitTorrent)", "tracker",
       hybrid::SNetworkStyle::kBitTorrent, 2},
  };
  for (const auto& v : variants) {
    auto cfg = bench::base_config(scale, 0);
    cfg.hybrid.ps = 0.9;
    cfg.hybrid.ttl = v.ttl;
    cfg.hybrid.style = v.style;
    const auto r = exp::run_hybrid_experiment(cfg);
    table.row()
        .cell(v.name)
        .cell(r.lookup_latency_ms.mean(), 1)
        .cell(r.lookups.failure_ratio(), 4)
        .cell(static_cast<double>(r.connum()) /
                  static_cast<double>(r.lookups.issued),
              2)
        .cell(r.network.class_messages(proto::TrafficClass::kQuery));
    exp::collect_run_result(reporter.metrics(), v.key, r);
  }
  table.print(std::cout);
  reporter.add_table("ablation_bittorrent", table);
  return reporter.write() ? 0 : 1;
}
