// Ablation: physical link stress (Section 5.2's motivating metric) with and
// without topology-aware s-network construction.
//
// Link stress = copies of overlay messages crossing a physical link.  When
// s-network neighbours are physically close, intra-tree traffic stops
// criss-crossing the transit core, trimming both the mean and the hottest
// link.
#include <cstdio>

#include "bench_util.hpp"
#include "exp/metrics_collect.hpp"
#include "stats/table.hpp"

using namespace hp2p;

int main() {
  auto scale = bench::scale_from_env();
  bench::Reporter reporter{"ablation_link_stress", scale};
  bench::print_header(
      "Ablation -- physical link stress, topology awareness on/off",
      "clustered s-networks keep flood/cp-chain traffic off the transit "
      "core",
      scale);

  stats::Table table{{"config", "max_link_stress", "mean_link_stress",
                      "lookup_ms"}};
  for (bool aware : {false, true}) {
    auto cfg = bench::base_config(scale, 0);
    cfg.hybrid.ps = 0.8;
    cfg.hybrid.ttl = 6;
    cfg.hybrid.t_routing = hybrid::TRouting::kFinger;
    cfg.hybrid.topology_aware = aware;
    cfg.hybrid.num_landmarks = 8;
    cfg.track_link_stress = true;
    // Maintenance (HELLO/ack) traffic is pure intra-s-network traffic --
    // exactly what clustering localizes -- so run the detectors for a
    // while before the lookups.
    cfg.failure_detection = true;
    cfg.recovery_time = sim::SimTime::seconds(60);
    const auto r = exp::run_hybrid_experiment(cfg);
    table.row()
        .cell(aware ? "topology aware (8 landmarks)" : "basic")
        .cell(r.max_link_stress)
        .cell(r.mean_link_stress, 1)
        .cell(r.lookup_latency_ms.mean(), 1);
    exp::collect_run_result(reporter.metrics(), aware ? "aware" : "basic", r);
  }
  table.print(std::cout);
  reporter.add_table("ablation_link_stress", table);
  return reporter.write() ? 0 : 1;
}
