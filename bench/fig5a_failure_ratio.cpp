// Fig. 5a: lookup failure ratio vs p_s for TTL in {1, 2, 4}.
//
// Paper shape: ~0 failures while p_s < 0.5 (s-networks average < 1 peer),
// then an exponential-looking rise with p_s; raising the TTL pushes the
// curve down sharply (18% -> 4% at p_s = 0.9 going TTL 1 -> 4).
#include <cstdio>

#include "bench_util.hpp"
#include "stats/table.hpp"

using namespace hp2p;

int main() {
  auto scale = bench::scale_from_env();
  bench::Reporter reporter{"fig5a_failure_ratio", scale};
  bench::print_header(
      "Fig. 5a -- lookup failure ratio vs p_s, per TTL",
      "zero below p_s=0.5; grows with p_s; larger TTL cuts failures "
      "dramatically",
      scale);

  const unsigned ttls[] = {1, 2, 4};
  stats::Table table{{"p_s", "TTL=1", "TTL=2", "TTL=4"}};
  for (double ps = 0.0; ps <= 0.901; ps += 0.1) {
    table.row().cell(ps, 1);
    for (unsigned ttl : ttls) {
      const double ratio = bench::replicate_mean(scale, [&](std::size_t r) {
        auto cfg = bench::base_config(scale, r);
        cfg.hybrid.ps = ps;
        cfg.hybrid.ttl = ttl;
        return exp::run_hybrid_experiment(cfg).lookups.failure_ratio();
      });
      table.cell(ratio, 4);
      reporter.metrics().set("failure_ratio.ps_" + bench::metric_num(ps) +
                                 ".ttl_" + std::to_string(ttl),
                             ratio);
    }
  }
  table.print(std::cout);
  reporter.add_table("fig5a_failure_ratio", table);
  return reporter.write() ? 0 : 1;
}
