// Shared helpers for the figure/table bench binaries.
#pragma once

#include <cstdio>
#include <ctime>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "common/env.hpp"
#include "exp/harness.hpp"
#include "stats/json.hpp"
#include "stats/metrics.hpp"
#include "stats/profiler.hpp"
#include "stats/table.hpp"
#include "stats/timeseries.hpp"

namespace hp2p::bench {

/// Experiment scale, overridable from the environment so the same binaries
/// serve both a quick smoke pass and a paper-scale run:
///   HP2P_PEERS=1000 HP2P_ITEMS=5000 HP2P_LOOKUPS=5000 HP2P_REPLICAS=3
struct Scale {
  std::uint32_t peers;
  std::size_t items;
  std::size_t lookups;
  std::size_t replicas;
  std::uint64_t seed;
};

[[nodiscard]] inline Scale scale_from_env() {
  Scale s{};
  s.peers = static_cast<std::uint32_t>(env_or("HP2P_PEERS", std::int64_t{400}));
  s.items = static_cast<std::size_t>(env_or("HP2P_ITEMS", std::int64_t{1000}));
  s.lookups = static_cast<std::size_t>(env_or("HP2P_LOOKUPS", std::int64_t{1000}));
  s.replicas = static_cast<std::size_t>(env_or("HP2P_REPLICAS", std::int64_t{1}));
  s.seed = static_cast<std::uint64_t>(env_or("HP2P_SEED", std::int64_t{42}));
  return s;
}

/// HP2P_TRACE=1 turns on causal tracing + gauge sampling in the benches
/// that support it (the run additionally writes TRACE_<name>.json).
[[nodiscard]] inline bool trace_from_env() {
  return env_or("HP2P_TRACE", std::int64_t{0}) != 0;
}

/// HP2P_PROFILE=1 attaches a stats::Profiler to the benches that support it:
/// the report gains a `profile` section and the run writes a collapsed-stack
/// file (PROFILE_<name>.collapsed) for flamegraph.pl / speedscope.
[[nodiscard]] inline bool profile_from_env() {
  return env_or("HP2P_PROFILE", std::int64_t{0}) != 0;
}

[[nodiscard]] inline exp::RunConfig base_config(const Scale& s,
                                                std::size_t replica = 0) {
  exp::RunConfig c;
  c.seed = s.seed + replica * 1000003;
  c.num_peers = s.peers;
  c.num_items = s.items;
  c.num_lookups = s.lookups;
  c.hybrid.delta = 3;  // as in the paper's simulations
  return c;
}

inline void print_header(const char* figure, const char* claim,
                         const Scale& s) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", figure);
  std::printf("paper claim: %s\n", claim);
  std::printf("scale: %u peers, %zu items, %zu lookups, %zu replica(s), "
              "seed %llu\n",
              s.peers, s.items, s.lookups, s.replicas,
              static_cast<unsigned long long>(s.seed));
  std::printf("==============================================================="
              "=================\n");
}

/// Formats a number for use inside a dotted metric name ('.' would nest, so
/// the decimal point becomes 'p': 0.4 -> "0p4").
[[nodiscard]] inline std::string metric_num(double v, int precision = 1) {
  std::string s = stats::format_fixed(v, precision);
  for (char& c : s) {
    if (c == '.') c = 'p';
  }
  return s;
}

/// Mean of a metric across replicas of the same configuration.
template <typename Fn>
[[nodiscard]] double replicate_mean(const Scale& s, Fn make_and_measure) {
  double total = 0;
  for (std::size_t r = 0; r < s.replicas; ++r) {
    total += make_and_measure(r);
  }
  return total / static_cast<double>(s.replicas);
}

/// Machine-readable run report, written next to the ASCII output as
/// BENCH_<name>.json.  Schema (version 5; v1 fields are unchanged, v2 adds
/// the always-present `timeseries` array, v3 adds the `replication.*`
/// namespace to per-run metrics -- replica/re-replication/anti-entropy/
/// read-repair counters plus items_stored / items_recoverable /
/// data_availability -- emitted by collect_run_result for every run; v4
/// adds the always-present `run_info` provenance object and, on profiled
/// runs (HP2P_PROFILE=1), the optional `profile` section exported by
/// stats::Profiler::to_json(); v5 adds the always-present `scenarios`
/// array -- one ScenarioReport::to_json() object per production-traffic
/// scenario executed by the run, empty for benches that run none):
///
///   {
///     "schema_version": 5,
///     "bench": "<name>",
///     "seed": <int>,
///     "run_info": {                   // provenance, never feeds metrics
///       "wall_unix_s": <int>,         // host clock at write() time
///       "git_describe": "<str>",      // build tree version ("unknown" if
///                                     //   the build ran outside git)
///       "host_threads": <int>,        // std::thread::hardware_concurrency
///       "peers": <int>               // headline scale of this run
///     },
///     "config": { ... },              // nested; scale + bench-specific knobs
///     "metrics": { ... },             // nested MetricsRegistry export
///     "tables": [                     // the ASCII tables, verbatim cells
///       {"title": "...", "columns": ["..."], "rows": [["..."]]}
///     ],
///     "timeseries": [                 // sampled gauges (empty when not run)
///       {"name": "...", "period_ms": ..., "t_ms": [...], "series": {...}}
///     ],
///     "scenarios": [                  // per-scenario verdicts (empty when
///       {"scenario": "...", ...}      //   the bench runs no scenarios)
///     ],
///     "profile": { ... }              // only on HP2P_PROFILE=1 runs
///   }
///
/// Benches populate config()/metrics() through the registry API and mirror
/// each printed stats::Table with add_table(); write() is the last line of
/// main().  Files are written atomically (temp file + rename) so a crashed
/// or concurrent run never leaves a truncated report behind.
class Reporter {
 public:
  static constexpr std::int64_t kSchemaVersion = 5;

  explicit Reporter(std::string name, std::uint64_t seed = 0)
      : name_(std::move(name)), seed_(seed) {}

  Reporter(std::string name, const Scale& s)
      : Reporter(std::move(name), s.seed) {
    peers_ = s.peers;
    config_.set("peers", stats::JsonValue{std::uint64_t{s.peers}});
    config_.set("items", stats::JsonValue{static_cast<std::uint64_t>(s.items)});
    config_.set("lookups",
                stats::JsonValue{static_cast<std::uint64_t>(s.lookups)});
    config_.set("replicas",
                stats::JsonValue{static_cast<std::uint64_t>(s.replicas)});
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  stats::MetricsRegistry& config() { return config_; }
  stats::MetricsRegistry& metrics() { return metrics_; }

  /// Mirrors one printed table into the report (cells verbatim).
  void add_table(const std::string& title, const stats::Table& table) {
    stats::JsonValue t = stats::JsonValue::object();
    t.set("title", stats::JsonValue{title});
    stats::JsonValue columns = stats::JsonValue::array();
    for (const std::string& h : table.headers()) {
      columns.push_back(stats::JsonValue{h});
    }
    t.set("columns", std::move(columns));
    stats::JsonValue rows = stats::JsonValue::array();
    for (std::size_t i = 0; i < table.num_rows(); ++i) {
      stats::JsonValue row = stats::JsonValue::array();
      for (const std::string& c : table.row_cells(i)) {
        row.push_back(stats::JsonValue{c});
      }
      rows.push_back(std::move(row));
    }
    t.set("rows", std::move(rows));
    tables_.push_back(std::move(t));
  }

  /// Embeds one sampled-gauge block (RunResult::timeseries) in the report.
  void add_timeseries(const stats::TimeSeries& ts) {
    timeseries_.push_back(ts.to_json());
  }

  /// Embeds the profiler export (stats::Profiler::to_json()) as the
  /// report's `profile` section (schema v4, HP2P_PROFILE=1 runs only).
  void set_profile(stats::JsonValue profile) { profile_ = std::move(profile); }

  /// Appends one production-traffic scenario verdict
  /// (workload::ScenarioReport::to_json()) to the v5 `scenarios` array.
  void add_scenario(stats::JsonValue scenario) {
    scenarios_.push_back(std::move(scenario));
  }

  [[nodiscard]] stats::JsonValue to_json() const {
    stats::JsonValue root = stats::JsonValue::object();
    root.set("schema_version", stats::JsonValue{kSchemaVersion});
    root.set("bench", stats::JsonValue{name_});
    root.set("seed", stats::JsonValue{seed_});
    // Provenance only: nothing under run_info may feed a metric or a table,
    // so host-dependent values here never threaten run determinism.
    stats::JsonValue run_info = stats::JsonValue::object();
    run_info.set("wall_unix_s",
                 stats::JsonValue{
                     static_cast<std::uint64_t>(std::time(nullptr))});
#ifdef HP2P_GIT_DESCRIBE
    run_info.set("git_describe", stats::JsonValue{std::string{
                                     HP2P_GIT_DESCRIBE}});
#else
    run_info.set("git_describe", stats::JsonValue{std::string{"unknown"}});
#endif
    run_info.set("host_threads",
                 stats::JsonValue{
                     std::uint64_t{std::thread::hardware_concurrency()}});
    run_info.set("peers", stats::JsonValue{std::uint64_t{peers_}});
    root.set("run_info", std::move(run_info));
    root.set("config", config_.to_json());
    root.set("metrics", metrics_.to_json());
    stats::JsonValue tables = stats::JsonValue::array();
    for (const stats::JsonValue& t : tables_) tables.push_back(t);
    root.set("tables", std::move(tables));
    stats::JsonValue timeseries = stats::JsonValue::array();
    for (const stats::JsonValue& ts : timeseries_) timeseries.push_back(ts);
    root.set("timeseries", std::move(timeseries));
    stats::JsonValue scenarios = stats::JsonValue::array();
    for (const stats::JsonValue& sc : scenarios_) scenarios.push_back(sc);
    root.set("scenarios", std::move(scenarios));
    if (profile_) root.set("profile", *profile_);
    return root;
  }

  /// Writes BENCH_<name>.json into the working directory (or `path`),
  /// atomically: the JSON lands in `path + ".tmp"` first and is renamed
  /// over `path` only after a clean close.
  bool write() const { return write("BENCH_" + name_ + ".json"); }
  bool write(const std::string& path) const {
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out{tmp};
      if (!out) {
        std::fprintf(stderr, "warning: cannot write %s\n", tmp.c_str());
        return false;
      }
      out << to_json().dump(2) << '\n';
      out.close();
      if (!out) {
        std::fprintf(stderr, "warning: short write to %s\n", tmp.c_str());
        std::remove(tmp.c_str());
        return false;
      }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::fprintf(stderr, "warning: cannot rename %s to %s\n", tmp.c_str(),
                   path.c_str());
      std::remove(tmp.c_str());
      return false;
    }
    std::printf("report: %s\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  std::uint64_t seed_ = 0;
  std::uint32_t peers_ = 0;
  stats::MetricsRegistry config_;
  stats::MetricsRegistry metrics_;
  std::vector<stats::JsonValue> tables_;
  std::vector<stats::JsonValue> timeseries_;
  std::vector<stats::JsonValue> scenarios_;
  std::optional<stats::JsonValue> profile_;
};

/// Uniform HP2P_PROFILE=1 epilogue for a profiled run: prints the
/// per-component attribution table (mirrored into the report), embeds the
/// `profile` section, and writes the collapsed-stack file next to the JSON.
inline void report_profile(Reporter& reporter, const stats::Profiler& prof) {
  stats::Table table{{"component", "events", "cpu_ms", "allocs", "alloc_KB"}};
  for (std::size_t c = 0; c < sim::kNumComponents; ++c) {
    const auto total =
        prof.component_total(static_cast<sim::Component>(c));
    if (total.enters == 0 && total.cpu_ns == 0) continue;
    table.row()
        .cell(std::string{
            sim::component_name(static_cast<sim::Component>(c))})
        .cell(total.enters)
        .cell(static_cast<double>(total.cpu_ns) / 1e6, 2)
        .cell(total.allocs)
        .cell(static_cast<double>(total.alloc_bytes) / 1024.0, 1);
  }
  table.print(std::cout);
  std::printf("profile: dispatch %.2f ms, attributed %.2f ms (%.1f%%)\n",
              static_cast<double>(prof.dispatch_ns_total()) / 1e6,
              static_cast<double>(prof.attributed_ns()) / 1e6,
              prof.dispatch_ns_total() > 0
                  ? 100.0 * static_cast<double>(prof.attributed_ns()) /
                        static_cast<double>(prof.dispatch_ns_total())
                  : 0.0);
  reporter.add_table("profile_components", table);
  reporter.set_profile(prof.to_json());
  const std::string collapsed = "PROFILE_" + reporter.name() + ".collapsed";
  if (prof.write_collapsed(collapsed)) {
    std::printf("profile: %s\n", collapsed.c_str());
  }
}

}  // namespace hp2p::bench
