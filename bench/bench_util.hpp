// Shared helpers for the figure/table bench binaries.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "common/env.hpp"
#include "exp/harness.hpp"

namespace hp2p::bench {

/// Experiment scale, overridable from the environment so the same binaries
/// serve both a quick smoke pass and a paper-scale run:
///   HP2P_PEERS=1000 HP2P_ITEMS=5000 HP2P_LOOKUPS=5000 HP2P_REPLICAS=3
struct Scale {
  std::uint32_t peers;
  std::size_t items;
  std::size_t lookups;
  std::size_t replicas;
  std::uint64_t seed;
};

[[nodiscard]] inline Scale scale_from_env() {
  Scale s{};
  s.peers = static_cast<std::uint32_t>(env_or("HP2P_PEERS", std::int64_t{400}));
  s.items = static_cast<std::size_t>(env_or("HP2P_ITEMS", std::int64_t{1000}));
  s.lookups = static_cast<std::size_t>(env_or("HP2P_LOOKUPS", std::int64_t{1000}));
  s.replicas = static_cast<std::size_t>(env_or("HP2P_REPLICAS", std::int64_t{1}));
  s.seed = static_cast<std::uint64_t>(env_or("HP2P_SEED", std::int64_t{42}));
  return s;
}

[[nodiscard]] inline exp::RunConfig base_config(const Scale& s,
                                                std::size_t replica = 0) {
  exp::RunConfig c;
  c.seed = s.seed + replica * 1000003;
  c.num_peers = s.peers;
  c.num_items = s.items;
  c.num_lookups = s.lookups;
  c.hybrid.delta = 3;  // as in the paper's simulations
  return c;
}

inline void print_header(const char* figure, const char* claim,
                         const Scale& s) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", figure);
  std::printf("paper claim: %s\n", claim);
  std::printf("scale: %u peers, %zu items, %zu lookups, %zu replica(s), "
              "seed %llu\n",
              s.peers, s.items, s.lookups, s.replicas,
              static_cast<unsigned long long>(s.seed));
  std::printf("==============================================================="
              "=================\n");
}

/// Mean of a metric across replicas of the same configuration.
template <typename Fn>
[[nodiscard]] double replicate_mean(const Scale& s, Fn make_and_measure) {
  double total = 0;
  for (std::size_t r = 0; r < s.replicas; ++r) {
    total += make_and_measure(r);
  }
  return total / static_cast<double>(s.replicas);
}

}  // namespace hp2p::bench
