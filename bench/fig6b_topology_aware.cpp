// Fig. 6b: average lookup latency vs p_s, basic vs topology-aware
// s-network assignment with 8 and 12 landmarks (Section 5.2).
//
// Paper shape: identical at p_s = 0 (no s-networks to cluster); the
// topology-aware curves fall faster as p_s grows; more landmarks help; the
// three curves converge again by p_s ~ 0.9 (many tiny s-networks are
// near-local anyway).
#include <cstdio>

#include "bench_util.hpp"
#include "stats/table.hpp"

using namespace hp2p;

int main() {
  auto scale = bench::scale_from_env();
  bench::Reporter reporter{"fig6b_topology_aware", scale};
  bench::print_header(
      "Fig. 6b -- average lookup latency vs p_s, topology awareness",
      "aware < basic for mid p_s; more landmarks -> lower latency; curves "
      "merge near p_s=0.9",
      scale);

  stats::Table table{{"p_s", "basic_ms", "aware_8lm_ms", "aware_12lm_ms"}};
  for (double ps = 0.0; ps <= 0.901; ps += 0.1) {
    auto measure = [&](bool aware, unsigned landmarks) {
      return bench::replicate_mean(scale, [&](std::size_t r) {
        auto cfg = bench::base_config(scale, r);
        cfg.hybrid.ps = ps;
        cfg.hybrid.ttl = 6;
        // Finger routing on the t-network: clustering improves the
        // *intra-s-network* hops (cp chain, flood), which a ~N_t/2-hop
        // ring walk would completely drown out.
        cfg.hybrid.t_routing = hybrid::TRouting::kFinger;
        cfg.hybrid.topology_aware = aware;
        cfg.hybrid.num_landmarks = landmarks;
        return exp::run_hybrid_experiment(cfg).lookup_latency_ms.mean();
      });
    };
    const double basic = measure(false, 0);
    const double aware8 = measure(true, 8);
    const double aware12 = measure(true, 12);
    table.row().cell(ps, 1).cell(basic, 1).cell(aware8, 1).cell(aware12, 1);
    const std::string base = "lookup_latency_ms.ps_" + bench::metric_num(ps);
    reporter.metrics().set(base + ".basic", basic);
    reporter.metrics().set(base + ".aware_8lm", aware8);
    reporter.metrics().set(base + ".aware_12lm", aware12);
  }
  table.print(std::cout);
  reporter.add_table("fig6b_lookup_latency", table);
  return reporter.write() ? 0 : 1;
}
