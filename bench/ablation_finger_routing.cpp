// Ablation: t-network routing mode -- plain ring forwarding vs finger
// tables (Section 4.1 analyzes both: ~N_t/2 hops vs ~log N_t hops).
//
// The paper's Table 2 magnitudes match ring forwarding; finger routing
// slashes connum and latency for small p_s, where the ring walk dominates
// every cross-network lookup.
#include <cstdio>

#include "bench_util.hpp"
#include "stats/table.hpp"

using namespace hp2p;

int main() {
  auto scale = bench::scale_from_env();
  bench::Reporter reporter{"ablation_finger_routing", scale};
  bench::print_header(
      "Ablation -- t-network routing: ring vs finger tables",
      "ring walk ~ N_t/2 hops; fingers ~ log2 N_t; gap collapses as p_s "
      "shrinks the ring",
      scale);

  stats::Table table{{"p_s", "ring_hops", "finger_hops", "ring_connum",
                      "finger_connum"}};
  for (double ps : {0.0, 0.3, 0.6, 0.9}) {
    auto run = [&](hybrid::TRouting routing) {
      auto cfg = bench::base_config(scale, 0);
      cfg.hybrid.ps = ps;
      cfg.hybrid.ttl = 6;
      cfg.hybrid.t_routing = routing;
      return exp::run_hybrid_experiment(cfg);
    };
    const auto ring = run(hybrid::TRouting::kRing);
    const auto finger = run(hybrid::TRouting::kFinger);
    table.row()
        .cell(ps, 1)
        .cell(ring.lookup_hops.mean(), 1)
        .cell(finger.lookup_hops.mean(), 1)
        .cell(ring.connum())
        .cell(finger.connum());
    const std::string base = "ps_" + bench::metric_num(ps);
    reporter.metrics().set(base + ".ring_hops", ring.lookup_hops.mean());
    reporter.metrics().set(base + ".finger_hops", finger.lookup_hops.mean());
    reporter.metrics().set(base + ".ring_connum", ring.connum());
    reporter.metrics().set(base + ".finger_connum", finger.connum());
  }
  table.print(std::cout);
  reporter.add_table("ablation_finger_routing", table);
  return reporter.write() ? 0 : 1;
}
