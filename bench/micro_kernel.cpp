// Microbenchmarks for the kernel-level building blocks: event queue, RNG,
// hashing, finger-table scans, Dijkstra/underlay construction, and
// histogram updates.  google-benchmark binary.
#include <benchmark/benchmark.h>

#include "chord/finger_table.hpp"
#include "common/hashing.hpp"
#include "common/rng.hpp"
#include "net/transit_stub.hpp"
#include "net/underlay.hpp"
#include "sim/simulator.hpp"
#include "stats/histogram.hpp"

namespace {

using namespace hp2p;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t sink = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      sim.schedule_at(sim::SimTime::micros((i * 7919) % 100000),
                      [&sink] { ++sink; });
    }
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  // The HELLO/ack machinery cancels timers constantly; measure the lazy-
  // cancellation path.
  const auto n = static_cast<std::int64_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    std::vector<sim::TimerId> ids;
    ids.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      ids.push_back(sim.schedule_at(sim::SimTime::micros(i), [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) sim.cancel(ids[i]);
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueCancelHeavy)->Arg(10000);

void BM_RngUniform(benchmark::State& state) {
  Rng rng{1};
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink ^= rng.uniform(0, 999983);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RngUniform);

void BM_HashKey(benchmark::State& state) {
  std::uint64_t sink = 0;
  std::uint64_t i = 0;
  for (auto _ : state) {
    sink ^= hash_key("item-" + std::to_string(i++)).value();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_HashKey);

void BM_FingerClosestPreceding(benchmark::State& state) {
  chord::FingerTable fingers;
  fingers.init(PeerId{12345});
  Rng rng{2};
  for (unsigned k = 0; k < chord::FingerTable::size(); ++k) {
    fingers.set(k, PeerIndex{k}, PeerId{rng.uniform(0, kRingSize - 1)});
  }
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink ^= fingers.closest_preceding(rng.uniform(0, kRingSize - 1))
                .node_id.value();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_FingerClosestPreceding);

void BM_TransitStubGenerate(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto params = net::TransitStubParams::for_total_nodes(n);
  for (auto _ : state) {
    Rng rng{3};
    auto topo = net::generate_transit_stub(params, rng);
    benchmark::DoNotOptimize(topo.graph.num_edges());
  }
}
BENCHMARK(BM_TransitStubGenerate)->Arg(200)->Arg(1000);

void BM_UnderlayApsp(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto params = net::TransitStubParams::for_total_nodes(n);
  for (auto _ : state) {
    Rng rng{4};
    net::Underlay underlay{net::generate_transit_stub(params, rng), rng};
    benchmark::DoNotOptimize(
        underlay.latency(HostIndex{0}, HostIndex{n - 1}));
  }
}
BENCHMARK(BM_UnderlayApsp)->Arg(200)->Arg(500);

void BM_HistogramAdd(benchmark::State& state) {
  stats::Histogram hist{0.0, 1000.0, 64};
  Rng rng{5};
  for (auto _ : state) {
    hist.add(rng.uniform01() * 1200.0 - 100.0);
  }
  benchmark::DoNotOptimize(hist.total());
}
BENCHMARK(BM_HistogramAdd);

}  // namespace

BENCHMARK_MAIN();
