// Microbenchmarks for the kernel-level building blocks: event queue, RNG,
// hashing, finger-table scans, Dijkstra/underlay construction, histogram
// updates, and the Section 7 cache lookup structures.  google-benchmark
// binary with a custom main: every run is mirrored into
// BENCH_micro_kernel.json so throughput regressions are machine-checkable
// (e.g. the event-loop items_per_second guarding the trace-hook overhead).
#include <benchmark/benchmark.h>

#include <deque>
#include <unordered_map>
#include <vector>

#include "bench_util.hpp"
#include "chord/finger_table.hpp"
#include "common/alloc_stats.hpp"
#include "common/hashing.hpp"
#include "common/rng.hpp"
#include "net/transit_stub.hpp"
#include "net/underlay.hpp"
#include "proto/overlay_network.hpp"
#include "sim/simulator.hpp"
#include "stats/flight_recorder.hpp"
#include "stats/histogram.hpp"
#include "stats/profiler.hpp"
#include "stats/trace.hpp"

// Heap-allocation counting comes from the shared common/alloc_stats hook
// (referencing its accessors links the counting operator new into this
// binary), so the steady-state benches can ASSERT the event dispatch path
// allocates nothing (the InlineFunction + slot-arena contract).  The hook
// costs one relaxed atomic increment; the other benches measure through it
// uniformly.

namespace {

using namespace hp2p;

std::uint64_t heap_allocs() { return alloc_stats::allocation_count(); }

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t sink = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      sim.schedule_at(sim::SimTime::micros((i * 7919) % 100000),
                      [&sink] { ++sink; });
    }
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  // The HELLO/ack machinery cancels timers constantly; measure the lazy-
  // cancellation path.
  const auto n = static_cast<std::int64_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    std::vector<sim::TimerId> ids;
    ids.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      ids.push_back(sim.schedule_at(sim::SimTime::micros(i), [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) sim.cancel(ids[i]);
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueCancelHeavy)->Arg(10000);

void BM_EventQueueSteadyStateZeroAlloc(benchmark::State& state) {
  // Steady-state dispatch: constant-depth queue, one schedule + one fire per
  // iteration.  Once the slot arena and heap vector reach their high-water
  // capacity, this loop must perform ZERO heap allocations -- asserted via
  // the global operator-new hook, so a regressing closure size or container
  // swap fails the bench instead of silently re-adding a malloc per event.
  sim::Simulator sim;
  std::uint64_t sink = 0;
  constexpr std::int64_t kDepth = 1024;
  std::int64_t t = 0;
  for (; t < kDepth; ++t) {
    sim.schedule_at(sim::SimTime::micros(t), [&sink] { ++sink; });
  }
  // One full drain+refill warms every vector past its final capacity, then
  // a few schedule+step rounds reach the measured loop's exact high-water
  // occupancy (depth + 1 while the new event coexists with the popped one).
  sim.run();
  for (t = kDepth; t < 2 * kDepth; ++t) {
    sim.schedule_at(sim::SimTime::micros(t), [&sink] { ++sink; });
  }
  for (int i = 0; i < 16; ++i) {
    sim.schedule_at(sim::SimTime::micros(t++), [&sink] { ++sink; });
    sim.step();
  }
  const std::uint64_t allocs_before = heap_allocs();
  for (auto _ : state) {
    sim.schedule_at(sim::SimTime::micros(t++), [&sink] { ++sink; });
    sim.step();
  }
  const std::uint64_t allocs = heap_allocs() - allocs_before;
  benchmark::DoNotOptimize(sink);
  state.counters["heap_allocs"] =
      benchmark::Counter(static_cast<double>(allocs));
  if (allocs != 0) {
    state.SkipWithError("steady-state event dispatch heap-allocated");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueSteadyStateZeroAlloc);

void BM_TransportSteadyStateZeroAlloc(benchmark::State& state) {
  // One overlay message per iteration, delivered before the next: the
  // per-hop path (send -> schedule -> fire -> deliver) must not allocate
  // either -- this is the per-message malloc/free pair that dominated the
  // event loop past ~10k peers before the InlineFunction conversion.
  Rng rng{8};
  const auto params = net::TransitStubParams::for_total_nodes(200);
  const net::Underlay underlay{net::generate_transit_stub(params, rng), rng};
  sim::Simulator sim;
  proto::OverlayNetwork net{sim, underlay};
  const PeerIndex a = net.add_peer(HostIndex{17});
  const PeerIndex b = net.add_peer(HostIndex{171});
  std::uint64_t sink = 0;
  for (int i = 0; i < 64; ++i) {  // warm transport + kernel capacities
    net.send(a, b, proto::TrafficClass::kQuery, proto::kQueryBytes,
             [&sink] { ++sink; });
    sim.run();
  }
  const std::uint64_t allocs_before = heap_allocs();
  for (auto _ : state) {
    net.send(a, b, proto::TrafficClass::kQuery, proto::kQueryBytes,
             [&sink] { ++sink; });
    sim.run();
  }
  const std::uint64_t allocs = heap_allocs() - allocs_before;
  benchmark::DoNotOptimize(sink);
  state.counters["heap_allocs"] =
      benchmark::Counter(static_cast<double>(allocs));
  if (allocs != 0) {
    state.SkipWithError("per-message transport path heap-allocated");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransportSteadyStateZeroAlloc);

void BM_EventQueueProfiled(benchmark::State& state) {
  // Same workload as BM_EventQueueScheduleRun but with the dispatch
  // profiler attached: the delta against the unprofiled run is the
  // enabled-path cost (two tick reads + two allocation-counter snapshots
  // per event).  The ISSUE budget is <= 5% at the full-system event rate.
  const auto n = static_cast<std::int64_t>(state.range(0));
  stats::Profiler profiler;
  for (auto _ : state) {
    sim::Simulator sim;
    sim.set_dispatch_probe(&profiler);
    std::uint64_t sink = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      sim.schedule_at(sim::SimTime::micros((i * 7919) % 100000),
                      [&sink] { ++sink; });
    }
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  benchmark::DoNotOptimize(profiler.dispatch_ns_total());
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueProfiled)->Arg(10000);

void BM_EventQueueProfiledSteadyStateZeroAlloc(benchmark::State& state) {
  // The profiler preallocates its frame stack and accumulator table, so
  // steady-state dispatch must stay zero-alloc even with profiling ON --
  // otherwise continuous profiling would itself distort the allocation
  // attribution it reports.
  sim::Simulator sim;
  stats::Profiler profiler;
  sim.set_dispatch_probe(&profiler);
  std::uint64_t sink = 0;
  constexpr std::int64_t kDepth = 1024;
  std::int64_t t = 0;
  for (; t < kDepth; ++t) {
    sim.schedule_at(sim::SimTime::micros(t), [&sink] { ++sink; });
  }
  sim.run();
  for (t = kDepth; t < 2 * kDepth; ++t) {
    sim.schedule_at(sim::SimTime::micros(t), [&sink] { ++sink; });
  }
  for (int i = 0; i < 16; ++i) {
    sim.schedule_at(sim::SimTime::micros(t++), [&sink] { ++sink; });
    sim.step();
  }
  const std::uint64_t allocs_before = heap_allocs();
  for (auto _ : state) {
    sim.schedule_at(sim::SimTime::micros(t++), [&sink] { ++sink; });
    sim.step();
  }
  const std::uint64_t allocs = heap_allocs() - allocs_before;
  benchmark::DoNotOptimize(sink);
  state.counters["heap_allocs"] =
      benchmark::Counter(static_cast<double>(allocs));
  if (allocs != 0) {
    state.SkipWithError("profiled steady-state event dispatch heap-allocated");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueProfiledSteadyStateZeroAlloc);

void BM_EventQueueTraced(benchmark::State& state) {
  // Same workload as BM_EventQueueScheduleRun but with a trace hook set:
  // the delta against the untraced run is the cost a subscriber pays.
  const auto n = static_cast<std::int64_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t fires = 0;
    sim.set_trace([&fires](const sim::TraceEvent& ev) {
      if (ev.kind == sim::TraceEvent::Kind::kFire) ++fires;
    });
    std::uint64_t sink = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      sim.schedule_at(sim::SimTime::micros((i * 7919) % 100000),
                      [&sink] { ++sink; });
    }
    sim.run();
    benchmark::DoNotOptimize(sink);
    benchmark::DoNotOptimize(fires);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueTraced)->Arg(10000);

void BM_EventQueueFlightRecorder(benchmark::State& state) {
  // Same workload again with the flight recorder on the trace hook: the
  // always-on observability configuration of the soak tests.
  const auto n = static_cast<std::int64_t>(state.range(0));
  stats::FlightRecorder flight{512};
  for (auto _ : state) {
    sim::Simulator sim;
    sim.set_trace([&flight, &sim](const sim::TraceEvent& ev) {
      flight.record(sim.now(), "sim:event", static_cast<std::uint64_t>(ev.kind),
                    ev.seq);
    });
    std::uint64_t sink = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      sim.schedule_at(sim::SimTime::micros((i * 7919) % 100000),
                      [&sink] { ++sink; });
    }
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  benchmark::DoNotOptimize(flight.total_recorded());
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueFlightRecorder)->Arg(10000);

void BM_SpanRecorderBeginEnd(benchmark::State& state) {
  // Cost of one fully recorded hop: child span open + instant + close.
  constexpr std::size_t kCap = 1u << 16;
  stats::SpanRecorder recorder{kCap};
  auto root = recorder.start_trace("lookup", "lookup", 0, sim::SimTime{});
  std::int64_t t = 0;
  for (auto _ : state) {
    if (recorder.spans().size() + 2 > kCap) {
      // Swap in a fresh recorder instead of measuring the at-capacity
      // drop path.
      state.PauseTiming();
      recorder = stats::SpanRecorder{kCap};
      root = recorder.start_trace("lookup", "lookup", 0, sim::SimTime{});
      state.ResumeTiming();
    }
    const auto span = recorder.begin_span(root, "ring", "ring", 1,
                                          sim::SimTime::micros(t));
    recorder.instant(span, "ring_hop", 2, sim::SimTime::micros(t + 1), "hop",
                     1);
    recorder.end_span(span, sim::SimTime::micros(t + 2));
    t += 3;
  }
  benchmark::DoNotOptimize(recorder.spans().size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanRecorderBeginEnd);

// --- Section 7 cache lookup: the seed's linear deque scan vs the indexed
// map answer_source now uses.  Same record shape, same probe stream.

struct CacheRec {
  std::uint64_t id;
  std::uint64_t expires;
};

std::vector<std::uint64_t> cache_probes(std::size_t cap) {
  Rng rng{6};
  std::vector<std::uint64_t> probes;
  probes.reserve(1024);
  for (std::size_t i = 0; i < 1024; ++i) {
    probes.push_back(rng.uniform(0, cap - 1) * 2654435761ULL);
  }
  return probes;
}

void BM_CacheLinearScan(benchmark::State& state) {
  const auto cap = static_cast<std::size_t>(state.range(0));
  std::deque<CacheRec> cache;
  for (std::size_t i = 0; i < cap; ++i) {
    cache.push_back({i * 2654435761ULL, 1});
  }
  const auto probes = cache_probes(cap);
  std::size_t p = 0;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    const std::uint64_t id = probes[p++ & 1023];
    for (const CacheRec& rec : cache) {
      if (rec.id == id) {
        sink += rec.expires;
        break;
      }
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheLinearScan)->Arg(8)->Arg(64)->Arg(512);

void BM_CacheIndexedLookup(benchmark::State& state) {
  const auto cap = static_cast<std::size_t>(state.range(0));
  std::unordered_map<std::uint64_t, CacheRec> cache;
  for (std::size_t i = 0; i < cap; ++i) {
    cache.emplace(i * 2654435761ULL, CacheRec{i * 2654435761ULL, 1});
  }
  const auto probes = cache_probes(cap);
  std::size_t p = 0;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    const auto it = cache.find(probes[p++ & 1023]);
    if (it != cache.end()) sink += it->second.expires;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheIndexedLookup)->Arg(8)->Arg(64)->Arg(512);

void BM_RngUniform(benchmark::State& state) {
  Rng rng{1};
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink ^= rng.uniform(0, 999983);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RngUniform);

void BM_HashKey(benchmark::State& state) {
  std::uint64_t sink = 0;
  std::uint64_t i = 0;
  for (auto _ : state) {
    sink ^= hash_key("item-" + std::to_string(i++)).value();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_HashKey);

void BM_FingerClosestPreceding(benchmark::State& state) {
  chord::FingerTable fingers;
  fingers.init(PeerId{12345});
  Rng rng{2};
  for (unsigned k = 0; k < chord::FingerTable::size(); ++k) {
    fingers.set(k, PeerIndex{k}, PeerId{rng.uniform(0, kRingSize - 1)});
  }
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink ^= fingers.closest_preceding(rng.uniform(0, kRingSize - 1))
                .node_id.value();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_FingerClosestPreceding);

void BM_TransitStubGenerate(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto params = net::TransitStubParams::for_total_nodes(n);
  for (auto _ : state) {
    Rng rng{3};
    auto topo = net::generate_transit_stub(params, rng);
    benchmark::DoNotOptimize(topo.graph.num_edges());
  }
}
BENCHMARK(BM_TransitStubGenerate)->Arg(200)->Arg(1000);

void BM_UnderlayApsp(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto params = net::TransitStubParams::for_total_nodes(n);
  for (auto _ : state) {
    Rng rng{4};
    net::Underlay underlay{net::generate_transit_stub(params, rng), rng};
    benchmark::DoNotOptimize(
        underlay.latency(HostIndex{0}, HostIndex{n - 1}));
  }
}
BENCHMARK(BM_UnderlayApsp)->Arg(200)->Arg(500);

void BM_HistogramAdd(benchmark::State& state) {
  stats::Histogram hist{0.0, 1000.0, 64};
  Rng rng{5};
  for (auto _ : state) {
    hist.add(rng.uniform01() * 1200.0 - 100.0);
  }
  benchmark::DoNotOptimize(hist.total());
}
BENCHMARK(BM_HistogramAdd);

// Console output as usual, plus every iteration run copied into the shared
// bench::Reporter so BENCH_micro_kernel.json carries per-bench
// real/cpu time and rate counters.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCaptureReporter(bench::Reporter& out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const std::string key = metric_key(run.benchmark_name());
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      out_.metrics().set(key + ".real_time_ns",
                         run.real_accumulated_time / iters * 1e9);
      out_.metrics().set(key + ".cpu_time_ns",
                         run.cpu_accumulated_time / iters * 1e9);
      out_.metrics().set(key + ".iterations",
                         static_cast<std::uint64_t>(run.iterations));
      for (const auto& [cname, counter] : run.counters) {
        // The library finishes counters (applies kIsRate etc.) before
        // handing runs to reporters; counter.value is the displayed number.
        out_.metrics().set(key + "." + metric_key(cname), counter.value);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  // "BM_Foo/1000" nests at the '/'; '.' and ':' would nest or collide.
  static std::string metric_key(std::string name) {
    for (char& c : name) {
      if (c == '/') {
        c = '.';
      } else if (c == '.' || c == ':') {
        c = '_';
      }
    }
    return name;
  }

  bench::Reporter& out_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  hp2p::bench::Reporter reporter{"micro_kernel"};
  JsonCaptureReporter display{reporter};
  benchmark::RunSpecifiedBenchmarks(&display);
  benchmark::Shutdown();
  return reporter.write() ? 0 : 1;
}
