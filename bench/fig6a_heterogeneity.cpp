// Fig. 6a: average lookup latency vs p_s, with and without link
// heterogeneity support (Section 5.1).
//
// Both series run over the same heterogeneous access links (1/3 slow, 1/3
// medium, 1/3 fast; 10x spread) with per-hop transmission delays modeled.
// "With" assigns t-peer roles to the fastest hosts and lets fast connect
// points take more children.  Paper shape: latency falls with p_s; the
// heterogeneity-aware variant sits below the basic one, most visibly for
// p_s in 0.4..0.8 (~20% at p_s = 0.7).
#include <cstdio>

#include "bench_util.hpp"
#include "exp/metrics_collect.hpp"
#include "stats/table.hpp"

using namespace hp2p;

int main() {
  auto scale = bench::scale_from_env();
  bench::Reporter reporter{"fig6a_heterogeneity", scale};
  bench::print_header(
      "Fig. 6a -- average lookup latency vs p_s, link heterogeneity on/off",
      "latency decreases with p_s; capacity-aware roles cut ~20% around "
      "p_s=0.7",
      scale);

  stats::Table table{
      {"p_s", "basic_ms", "heterogeneity_aware_ms", "improvement"}};
  for (double ps = 0.0; ps <= 0.901; ps += 0.1) {
    auto measure = [&](bool aware) {
      return bench::replicate_mean(scale, [&](std::size_t r) {
        auto cfg = bench::base_config(scale, r);
        cfg.hybrid.ps = ps;
        cfg.hybrid.ttl = 6;
        cfg.model_transmission_delay = true;
        cfg.capacity_sorted_roles = aware;
        cfg.hybrid.link_usage_connect = aware;
        return exp::run_hybrid_experiment(cfg).lookup_latency_ms.mean();
      });
    };
    const double basic = measure(false);
    const double aware = measure(true);
    table.row().cell(ps, 1).cell(basic, 1).cell(aware, 1).cell(
        basic > 0 ? (basic - aware) / basic : 0.0, 3);
    const std::string base = "lookup_latency_ms.ps_" + bench::metric_num(ps);
    reporter.metrics().set(base + ".basic", basic);
    reporter.metrics().set(base + ".aware", aware);
  }
  table.print(std::cout);
  reporter.add_table("fig6a_lookup_latency", table);

  // The imbalance that motivates the whole Section: t-peers carry far more
  // traffic than s-peers, so fast hosts belong on the t-network.
  std::printf("\nper-role traffic (messages handled per peer, basic "
              "config):\n");
  stats::Table load{{"p_s", "t-peer_traffic", "s-peer_traffic", "ratio"}};
  for (double ps : {0.3, 0.6, 0.9}) {
    auto cfg = bench::base_config(scale, 0);
    cfg.hybrid.ps = ps;
    cfg.hybrid.ttl = 6;
    cfg.model_transmission_delay = true;
    const auto r = exp::run_hybrid_experiment(cfg);
    load.row()
        .cell(ps, 1)
        .cell(r.mean_tpeer_traffic, 0)
        .cell(r.mean_speer_traffic, 0)
        .cell(r.mean_speer_traffic > 0
                  ? r.mean_tpeer_traffic / r.mean_speer_traffic
                  : 0.0,
              1);
    // Full metric tree for the heaviest configuration, as a load anchor.
    if (ps == 0.9) {
      exp::collect_run_result(reporter.metrics(), "run_ps_0p9", r);
    }
  }
  load.print(std::cout);
  reporter.add_table("fig6a_per_role_traffic", load);
  return reporter.write() ? 0 : 1;
}
