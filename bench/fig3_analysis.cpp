// Fig. 3a/3b: the Section 4 analytical curves -- average join latency and
// average lookup latency (in overlay hops) as p_s sweeps 0..1 for several
// degree constraints -- plus a simulated join-latency series to check that
// the simulator reproduces the model's shape.
#include <cstdio>

#include "analysis/model.hpp"
#include "bench_util.hpp"
#include "exp/metrics_collect.hpp"
#include "stats/table.hpp"

using namespace hp2p;

int main() {
  const auto scale = bench::scale_from_env();
  bench::Reporter reporter{"fig3_analysis", scale};
  bench::print_header(
      "Fig. 3a -- average join latency (hops) vs p_s, per delta",
      "hybrid beats both pure systems; minimum near p_s ~ 0.7-0.8; larger "
      "delta -> shorter joins",
      scale);

  const double deltas[] = {2, 4, 8, 16};
  {
    stats::Table table{{"p_s", "delta=2", "delta=4", "delta=8", "delta=16"}};
    for (double ps = 0.0; ps <= 0.981; ps += 0.05) {
      table.row().cell(ps, 2);
      for (double delta : deltas) {
        analysis::ModelParams p;
        p.n = scale.peers;
        p.ps = ps;
        p.delta = delta;
        table.cell(analysis::average_join_hops(p), 3);
      }
    }
    table.print(std::cout);
    reporter.add_table("fig3a_model_join_hops", table);
    for (double delta : deltas) {
      const double opt = analysis::optimal_ps_for_join(scale.peers, delta);
      std::printf("optimal p_s for join (delta=%g): %.2f\n", delta, opt);
      reporter.metrics().set(
          "optimal_join_ps.delta_" + std::to_string(static_cast<int>(delta)),
          opt);
    }
  }

  bench::print_header(
      "Fig. 3b -- average lookup latency (hops) vs p_s, per delta",
      "flat & highest while p_s < 0.5 (t-network dominates), then drops; "
      "larger delta -> shorter lookups",
      scale);
  {
    stats::Table table{{"p_s", "delta=2", "delta=4", "delta=8", "delta=16",
                        "unconstrained"}};
    for (double ps = 0.0; ps <= 0.981; ps += 0.05) {
      table.row().cell(ps, 2);
      for (double delta : deltas) {
        analysis::ModelParams p;
        p.n = scale.peers;
        p.ps = ps;
        p.delta = delta;
        p.ttl = 4;
        table.cell(analysis::lookup_hops_constrained(p), 3);
      }
      analysis::ModelParams p;
      p.n = scale.peers;
      p.ps = ps;
      table.cell(analysis::lookup_hops_unconstrained(p), 3);
    }
    table.print(std::cout);
    reporter.add_table("fig3b_model_lookup_hops", table);
  }

  bench::print_header(
      "Fig. 3a check -- simulated average join hops vs Eq. (1) shape",
      "simulation matches the theoretic analysis (Section 6)", scale);
  {
    stats::Table table{{"p_s", "simulated_join_hops", "model_join_hops"}};
    for (double ps : {0.0, 0.2, 0.4, 0.6, 0.8, 0.9}) {
      const double sim_hops = bench::replicate_mean(scale, [&](std::size_t r) {
        auto cfg = bench::base_config(scale, r);
        cfg.hybrid.ps = ps;
        cfg.num_items = 0;
        cfg.num_lookups = 0;
        return exp::run_hybrid_experiment(cfg).join_hops.mean();
      });
      analysis::ModelParams p;
      p.n = scale.peers;
      p.ps = ps;
      p.delta = 3;
      // The simulated t-network routes join requests along the ring
      // (Table 2 mode), so compare against the ring-walk variant of
      // Eq. (1): (1-ps) * (1-ps)N/2 linear term replaced by hops measured.
      table.row().cell(ps, 2).cell(sim_hops, 2).cell(
          analysis::average_join_hops(p), 2);
      reporter.metrics().set("sim_join_hops.ps_" + bench::metric_num(ps),
                             sim_hops);
    }
    table.print(std::cout);
    reporter.add_table("fig3a_sim_check_join_hops", table);
    std::printf("note: simulated joins use ring forwarding, the model's "
                "finger-accelerated term\nis a lower bound; shapes (interior "
                "minimum, rising tail) should agree.\n");
  }

  // HP2P_TRACE=1: one fully traced replica at the paper's operating point.
  // Produces TRACE_fig3_analysis.json (open in chrome://tracing or
  // https://ui.perfetto.dev), the per-lookup critical-path percentiles
  // under metrics.trace.*, and a sampled-gauge timeseries block.
  if (bench::trace_from_env()) {
    bench::print_header(
        "Traced replica -- causal spans, critical path, gauge samples",
        "observability pass; see EXPERIMENTS.md 'Tracing a lookup'", scale);
    stats::SpanRecorder recorder;
    auto cfg = bench::base_config(scale, 0);
    cfg.hybrid.ps = 0.8;
    cfg.tracer = &recorder;
    cfg.sample_period = sim::SimTime::millis(250);
    const auto result = exp::run_hybrid_experiment(cfg);
    recorder.collect_critical_path(reporter.metrics(), "trace");
    // Full result export (incl. traced.audit.* when HP2P_AUDIT=1 is also
    // set -- the audit-smoke ctest fixture validates those).
    exp::collect_run_result(reporter.metrics(), "traced", result);
    if (result.timeseries) reporter.add_timeseries(*result.timeseries);
    const auto breakdowns = recorder.lookup_breakdowns();
    std::printf("traced %zu lookups across %zu spans (%zu dropped)\n",
                breakdowns.size(), recorder.spans().size(),
                recorder.dropped_spans());
    if (recorder.write_catapult("TRACE_fig3_analysis.json")) {
      std::printf("trace: TRACE_fig3_analysis.json\n");
    }
  }

  // HP2P_PROFILE=1: one profiled replica at the same operating point.
  // Adds the schema-v4 `profile` section (per-component CPU/event/alloc
  // attribution, per-message-class time and bytes) and writes
  // PROFILE_fig3_analysis.collapsed for flamegraph.pl / speedscope.
  if (bench::profile_from_env()) {
    bench::print_header(
        "Profiled replica -- per-component CPU/alloc attribution",
        "observability pass; see README 'Profiling a run'", scale);
    stats::Profiler profiler;
    auto cfg = bench::base_config(scale, 0);
    cfg.hybrid.ps = 0.8;
    cfg.profiler = &profiler;
    cfg.sample_period = sim::SimTime::millis(250);
    const auto result = exp::run_hybrid_experiment(cfg);
    exp::collect_run_result(reporter.metrics(), "profiled", result);
    if (result.timeseries) reporter.add_timeseries(*result.timeseries);
    bench::report_profile(reporter, profiler);
  }
  return reporter.write() ? 0 : 1;
}
