// Ablation: s-network topology -- tree (paper default) vs star vs mesh.
//
// Section 3.2.2's argument for trees: a star gives diameter-2 lookups but a
// hopelessly unbalanced t-peer; a mesh delivers duplicate query copies; a
// degree-capped tree delivers each flooded query exactly once.  This bench
// quantifies all three on the same workload.
#include <cstdio>

#include "bench_util.hpp"
#include "exp/metrics_collect.hpp"
#include "stats/table.hpp"

using namespace hp2p;

int main() {
  auto scale = bench::scale_from_env();
  bench::Reporter reporter{"ablation_snetwork_topology", scale};
  bench::print_header(
      "Ablation -- s-network topology: tree vs star vs mesh",
      "tree: no duplicate query copies; star: shortest floods but maximal "
      "root degree; mesh: duplicates waste bandwidth",
      scale);

  struct Variant {
    const char* name;
    const char* key;  // metric-tree prefix for this variant's run
    hybrid::SNetworkStyle style;
  };
  const Variant variants[] = {
      {"tree (paper)", "tree", hybrid::SNetworkStyle::kTree},
      {"star", "star", hybrid::SNetworkStyle::kStar},
      {"mesh", "mesh", hybrid::SNetworkStyle::kMesh},
  };

  stats::Table table{{"style", "latency_ms", "failure", "query_msgs",
                      "contacted", "dup_ratio", "max_degree"}};
  for (const auto& v : variants) {
    auto cfg = bench::base_config(scale, 0);
    // Big s-networks (p_s = 0.9) and a short ring (finger routing) so the
    // s-network topology is what the measurement sees.
    cfg.hybrid.ps = 0.9;
    cfg.hybrid.ttl = 6;
    cfg.hybrid.t_routing = hybrid::TRouting::kFinger;
    cfg.hybrid.style = v.style;
    const auto r = exp::run_hybrid_experiment(cfg);
    const double queries = static_cast<double>(
        r.network.class_messages(proto::TrafficClass::kQuery));
    const double contacted = static_cast<double>(r.connum());
    table.row()
        .cell(v.name)
        .cell(r.lookup_latency_ms.mean(), 1)
        .cell(r.lookups.failure_ratio(), 4)
        .cell(static_cast<std::uint64_t>(queries))
        .cell(static_cast<std::uint64_t>(contacted))
        .cell(contacted > 0 ? queries / contacted : 0.0, 2)
        .cell(static_cast<std::uint64_t>(r.max_tree_degree));
    exp::collect_run_result(reporter.metrics(), v.key, r);
    reporter.metrics().set(std::string{v.key} + ".dup_ratio",
                           contacted > 0 ? queries / contacted : 0.0);
  }
  table.print(std::cout);
  reporter.add_table("ablation_snetwork_topology", table);
  std::printf("dup_ratio = query messages per distinct peer contacted (the "
              "tree stays near 1,\nthe mesh pays for redundancy); max_degree "
              "is the load the busiest peer carries\n(the star's root serves "
              "its whole s-network).\n");
  return reporter.write() ? 0 : 1;
}
