// Fig. 5b: lookup failure ratio when a fraction of peers crash (no load
// transfer) before the lookups, for several p_s values.
//
// Paper shape: failure ratio grows linearly with the crashed fraction, and
// is essentially independent of p_s (the improved placement scheme spreads
// data evenly, so each crashed peer takes a proportional bite).
#include <cstdio>

#include "bench_util.hpp"
#include "stats/table.hpp"

using namespace hp2p;

int main() {
  auto scale = bench::scale_from_env();
  bench::Reporter reporter{"fig5b_crash", scale};
  bench::print_header(
      "Fig. 5b -- lookup failure ratio vs fraction of crashed peers",
      "linear in the crash fraction; level is insensitive to p_s "
      "(scheme-2 placement spreads the loss)",
      scale);

  const double ps_values[] = {0.4, 0.7, 0.9};
  stats::Table table{{"crashed", "p_s=0.4", "p_s=0.7", "p_s=0.9"}};
  for (double crashed = 0.0; crashed <= 0.501; crashed += 0.1) {
    table.row().cell(crashed, 1);
    for (double ps : ps_values) {
      const double ratio = bench::replicate_mean(scale, [&](std::size_t r) {
        auto cfg = bench::base_config(scale, r);
        cfg.hybrid.ps = ps;
        cfg.hybrid.ttl = 6;
        cfg.crash_fraction = crashed;
        cfg.recovery_time = sim::SimTime::seconds(25);
        cfg.hybrid.hello_interval = sim::SimTime::millis(1000);
        cfg.hybrid.hello_timeout = sim::SimTime::millis(3000);
        return exp::run_hybrid_experiment(cfg).lookups.failure_ratio();
      });
      table.cell(ratio, 4);
      reporter.metrics().set("failure_ratio.crashed_" +
                                 bench::metric_num(crashed) + ".ps_" +
                                 bench::metric_num(ps),
                             ratio);
    }
  }
  table.print(std::cout);
  reporter.add_table("fig5b_crash_failure_ratio", table);
  return reporter.write() ? 0 : 1;
}
