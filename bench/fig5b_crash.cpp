// Fig. 5b: lookup failure ratio when a fraction of peers crash (no load
// transfer) before the lookups, for several p_s values.
//
// Paper shape: failure ratio grows linearly with the crashed fraction, and
// is essentially independent of p_s (the improved placement scheme spreads
// data evenly, so each crashed peer takes a proportional bite).
#include <cstdio>

#include "bench_util.hpp"
#include "stats/table.hpp"

using namespace hp2p;

int main() {
  auto scale = bench::scale_from_env();
  bench::Reporter reporter{"fig5b_crash", scale};
  bench::print_header(
      "Fig. 5b -- lookup failure ratio vs fraction of crashed peers",
      "linear in the crash fraction; level is insensitive to p_s "
      "(scheme-2 placement spreads the loss)",
      scale);

  const double ps_values[] = {0.4, 0.7, 0.9};
  stats::Table table{{"crashed", "p_s=0.4", "p_s=0.7", "p_s=0.9"}};
  for (double crashed = 0.0; crashed <= 0.501; crashed += 0.1) {
    table.row().cell(crashed, 1);
    for (double ps : ps_values) {
      const double ratio = bench::replicate_mean(scale, [&](std::size_t r) {
        auto cfg = bench::base_config(scale, r);
        cfg.hybrid.ps = ps;
        cfg.hybrid.ttl = 6;
        cfg.crash_fraction = crashed;
        cfg.recovery_time = sim::SimTime::seconds(25);
        cfg.hybrid.hello_interval = sim::SimTime::millis(1000);
        cfg.hybrid.hello_timeout = sim::SimTime::millis(3000);
        return exp::run_hybrid_experiment(cfg).lookups.failure_ratio();
      });
      table.cell(ratio, 4);
      reporter.metrics().set("failure_ratio.crashed_" +
                                 bench::metric_num(crashed) + ".ps_" +
                                 bench::metric_num(ps),
                             ratio);
    }
  }
  table.print(std::cout);
  reporter.add_table("fig5b_crash_failure_ratio", table);

  // Durability companion: the same crash storm at p_s = 0.7 with the
  // replication factor swept.  Data availability is the fraction of stored
  // ids some live peer still holds after recovery; service availability is
  // the lookup success ratio.  Expectation: both monotone in r.
  std::printf("\nData durability vs replication factor (p_s = 0.7)\n");
  stats::Table dtable{{"crashed", "avail r=1", "avail r=2", "avail r=3",
                       "service r=1", "service r=2", "service r=3"}};
  for (double crashed = 0.0; crashed <= 0.501; crashed += 0.1) {
    dtable.row().cell(crashed, 1);
    double avail[3] = {0, 0, 0};
    double service[3] = {0, 0, 0};
    for (std::size_t ri = 0; ri < 3; ++ri) {
      const unsigned r_factor = static_cast<unsigned>(ri) + 1;
      for (std::size_t rep = 0; rep < scale.replicas; ++rep) {
        auto cfg = bench::base_config(scale, rep);
        cfg.hybrid.ps = 0.7;
        cfg.hybrid.ttl = 6;
        cfg.crash_fraction = crashed;
        cfg.recovery_time = sim::SimTime::seconds(25);
        cfg.hybrid.hello_interval = sim::SimTime::millis(1000);
        cfg.hybrid.hello_timeout = sim::SimTime::millis(3000);
        cfg.hybrid.replication_factor = r_factor;
        const auto res = exp::run_hybrid_experiment(cfg);
        avail[ri] += res.data_availability();
        service[ri] += 1.0 - res.lookups.failure_ratio();
      }
      avail[ri] /= static_cast<double>(scale.replicas);
      service[ri] /= static_cast<double>(scale.replicas);
      const std::string suffix = "crashed_" + bench::metric_num(crashed) +
                                 ".r_" + std::to_string(r_factor);
      reporter.metrics().set("data_availability." + suffix, avail[ri]);
      reporter.metrics().set("service_availability." + suffix, service[ri]);
    }
    for (const double a : avail) dtable.cell(a, 4);
    for (const double s : service) dtable.cell(s, 4);
  }
  dtable.print(std::cout);
  reporter.add_table("fig5b_crash_durability", dtable);
  return reporter.write() ? 0 : 1;
}
