// Table 2: total connum (number of peers contacted by all data lookups)
// under different TTL values as p_s sweeps 0 -> 0.9.
//
// Paper shape: connum decays roughly linearly with p_s (at p_s = 0.9 it is
// ~10% of the structured baseline), and the TTL only matters once
// p_s > 0.5, where a bigger flood radius touches slightly more peers.
// The paper's absolute magnitudes (4.88M at p_s = 0) correspond to ring
// routing on the t-network, which is this bench's default mode.
#include <cstdio>

#include "bench_util.hpp"
#include "stats/table.hpp"

using namespace hp2p;

int main() {
  auto scale = bench::scale_from_env();
  bench::Reporter reporter{"table2_connum", scale};
  bench::print_header(
      "Table 2 -- total connum vs p_s, per TTL",
      "linear decay in p_s; TTL-insensitive below p_s=0.5, mildly "
      "TTL-sensitive above",
      scale);

  const unsigned ttls[] = {1, 2, 4};
  stats::Table table{{"p_s", "TTL=1", "TTL=2", "TTL=4"}};
  for (double ps = 0.0; ps <= 0.901; ps += 0.1) {
    table.row().cell(ps, 1);
    for (unsigned ttl : ttls) {
      const double connum = bench::replicate_mean(scale, [&](std::size_t r) {
        auto cfg = bench::base_config(scale, r);
        cfg.hybrid.ps = ps;
        cfg.hybrid.ttl = ttl;
        return static_cast<double>(exp::run_hybrid_experiment(cfg).connum());
      });
      table.cell(static_cast<std::uint64_t>(connum));
      reporter.metrics().set("connum.ps_" + bench::metric_num(ps) + ".ttl_" +
                                 std::to_string(ttl),
                             connum);
    }
  }
  table.print(std::cout);
  table.print_csv(std::cout);
  reporter.add_table("table2_connum", table);
  return reporter.write() ? 0 : 1;
}
