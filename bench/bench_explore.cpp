// State-space census for the verify/ interleaving explorer: runs the
// exhaustive 4-peer join+crash+lookup fixture with and without sleep-set
// pruning, plus a budgeted 8-peer random-walk sweep, and reports how much
// of the naive enumeration partial-order reduction and terminal-state
// dedup eliminate.  Mirrored into BENCH_explore.json for the CI gate.
#include <cstdio>
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "stats/table.hpp"
#include "verify/explorer.hpp"
#include "verify/scenario.hpp"

using namespace hp2p;

namespace {

verify::ScenarioConfig exhaustive_config() {
  verify::ScenarioConfig cfg;
  cfg.num_tpeers = 2;
  cfg.num_speers = 2;
  cfg.num_items = 2;
  cfg.num_lookups = 1;
  cfg.crash_peer = 4;
  cfg.crash_at = sim::SimTime::millis(2700);
  cfg.lookup_at = sim::SimTime::millis(2750);
  cfg.horizon = sim::SimTime::millis(3000);
  return cfg;
}

verify::ScenarioConfig walk_config() {
  verify::ScenarioConfig cfg;
  cfg.num_tpeers = 4;
  cfg.num_speers = 4;
  cfg.num_items = 3;
  cfg.num_lookups = 2;
  cfg.crash_peer = 7;
  cfg.window = sim::SimTime::millis(1);
  return cfg;
}

void census_row(stats::Table& table, bench::Reporter& reporter,
                const char* mode, const verify::ExploreResult& r) {
  table.row()
      .cell(mode)
      .cell(r.runs)
      .cell(r.completed_runs)
      .cell(r.pruned_runs)
      .cell(r.sleeping_branches)
      .cell(r.decision_points)
      .cell(static_cast<std::uint64_t>(r.max_depth))
      .cell(r.distinct_states)
      .cell(r.dedup_hits)
      .cell(r.violating_runs);
  const std::string p = std::string("explore.") + mode + ".";
  reporter.metrics().set(p + "runs", stats::JsonValue{r.runs});
  reporter.metrics().set(p + "completed_runs",
                         stats::JsonValue{r.completed_runs});
  reporter.metrics().set(p + "pruned_runs", stats::JsonValue{r.pruned_runs});
  reporter.metrics().set(p + "sleeping_branches",
                         stats::JsonValue{r.sleeping_branches});
  reporter.metrics().set(p + "decision_points",
                         stats::JsonValue{r.decision_points});
  reporter.metrics().set(
      p + "max_depth",
      stats::JsonValue{static_cast<std::uint64_t>(r.max_depth)});
  reporter.metrics().set(p + "distinct_states",
                         stats::JsonValue{r.distinct_states});
  reporter.metrics().set(p + "dedup_hits", stats::JsonValue{r.dedup_hits});
  reporter.metrics().set(p + "violating_runs",
                         stats::JsonValue{r.violating_runs});
}

}  // namespace

int main() {
  auto scale = bench::scale_from_env();
  bench::Reporter reporter{"explore", scale.seed};
  std::printf("state-space census: exhaustive 4-peer fixture (POR vs naive) "
              "+ budgeted 8-peer random walks\n");

  verify::ExploreOptions opts;
  opts.max_runs = 200000;
  const auto cfg = exhaustive_config();
  const auto por = verify::explore(cfg, opts);
  opts.sleep_sets = false;
  const auto naive = verify::explore(cfg, opts);
  const auto walks = verify::random_walks(walk_config(), 200, scale.seed);

  stats::Table table{{"mode", "runs", "completed", "pruned", "sleeping",
                      "decisions", "max_depth", "distinct", "dedup",
                      "violating"}};
  census_row(table, reporter, "por", por);
  census_row(table, reporter, "naive", naive);
  census_row(table, reporter, "walks", walks);
  table.print(std::cout);
  reporter.add_table("state_space_census", table);

  const double pruned_frac =
      naive.completed_runs == 0
          ? 0.0
          : 1.0 - static_cast<double>(por.runs) /
                      static_cast<double>(naive.completed_runs);
  std::printf("POR + dedup eliminated %.1f%% of the naive enumeration\n",
              100.0 * pruned_frac);
  reporter.metrics().set("explore.pruned_fraction",
                         stats::JsonValue{pruned_frac});

  // The census is also a gate: every explored interleaving must be clean,
  // pruning must drop no terminal state and must cut >= 50% of the naive
  // enumeration, and exhaustion must actually terminate.
  bool ok = reporter.write();
  if (por.budget_exhausted || naive.budget_exhausted) {
    std::printf("FAIL: exhaustive fixture did not terminate\n");
    ok = false;
  }
  if (por.violating_runs != 0 || naive.violating_runs != 0 ||
      walks.violating_runs != 0) {
    std::printf("FAIL: explorer found violations\n");
    ok = false;
  }
  if (por.state_hashes != naive.state_hashes) {
    std::printf("FAIL: pruning dropped a distinct terminal state\n");
    ok = false;
  }
  if (por.runs * 2 > naive.completed_runs) {
    std::printf("FAIL: pruning eliminated less than half of the naive "
                "enumeration\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
