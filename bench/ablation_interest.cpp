// Ablation: interest-based s-networks (Section 5.3) vs random assignment.
//
// With interest-based grouping and an interest-local workload, most stores
// and lookups never leave the issuing peer's s-network: latency, contacted
// peers and t-network traffic all drop.  Random assignment on the same
// workload cannot exploit the locality.
#include <cstdio>

#include "bench_util.hpp"
#include "exp/metrics_collect.hpp"
#include "stats/table.hpp"

using namespace hp2p;

int main() {
  auto scale = bench::scale_from_env();
  bench::Reporter reporter{"ablation_interest", scale};
  bench::print_header(
      "Ablation -- interest-based s-networks vs random assignment",
      "interest grouping keeps lookups local: fewer hops, fewer peers "
      "disturbed, less ring traffic",
      scale);

  stats::Table table{{"assignment", "locality", "latency_ms",
                      "contacted_per_lookup", "ring+flood_query_msgs"}};
  struct Variant {
    const char* name;
    const char* key;  // metric-tree prefix for this variant's run
    bool interest_based;
    double locality;
  };
  const Variant variants[] = {
      {"random, uniform ops", "random_uniform", false, 0.0},
      {"random, local ops", "random_local", false, 0.9},
      {"interest, local ops", "interest_local", true, 0.9},
  };
  for (const auto& v : variants) {
    auto cfg = bench::base_config(scale, 0);
    cfg.hybrid.ps = 0.85;
    cfg.hybrid.ttl = 10;
    cfg.hybrid.interest_based = v.interest_based;
    cfg.hybrid.num_interests = 8;
    cfg.interest_locality = v.locality;
    // Stable segment boundaries so each interest's anchor stays owned by
    // the s-network its community joined (see DESIGN.md).
    cfg.tpeers_first = true;
    const auto r = exp::run_hybrid_experiment(cfg);
    table.row()
        .cell(v.name)
        .cell(v.locality, 1)
        .cell(r.lookup_latency_ms.mean(), 1)
        .cell(static_cast<double>(r.connum()) /
                  static_cast<double>(r.lookups.issued),
              2)
        .cell(r.network.class_messages(proto::TrafficClass::kQuery));
    exp::collect_run_result(reporter.metrics(), v.key, r);
  }
  table.print(std::cout);
  reporter.add_table("ablation_interest", table);
  return reporter.write() ? 0 : 1;
}
