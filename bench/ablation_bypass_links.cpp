// Ablation: bypass links (Section 5.4) on vs off.
//
// Bypass links form on cross-s-network stores/lookups and shortcut later
// operations past the t-network.  Measured here: peers contacted per lookup
// and t-network query traffic, on a workload with repeated cross-network
// fetches (each key looked up twice so the second pass can use the links
// the first pass installed).
#include <cstdio>

#include "bench_util.hpp"
#include "exp/metrics_collect.hpp"
#include "stats/table.hpp"

using namespace hp2p;

int main() {
  auto scale = bench::scale_from_env();
  // Repeating lookups is the whole point here.
  scale.lookups = std::max<std::size_t>(scale.lookups, 2 * scale.items);
  bench::Reporter reporter{"ablation_bypass_links", scale};
  bench::print_header(
      "Ablation -- bypass links on/off",
      "bypass links divert repeat cross-network traffic off the t-network "
      "(Section 5.4)",
      scale);

  stats::Table table{{"bypass", "latency_ms", "contacted_per_lookup",
                      "query_msgs", "bypass_uses", "failure"}};
  for (bool enabled : {false, true}) {
    auto cfg = bench::base_config(scale, 0);
    cfg.hybrid.ps = 0.8;
    cfg.hybrid.ttl = 6;
    cfg.hybrid.bypass_links = enabled;
    // Bypass links are per-peer caches: they pay off when the same peers
    // keep fetching the same popular content from the same remote
    // s-networks, so use a small fixed origin pool and strongly Zipf-skewed
    // targets (each peer holds at most delta bypass links, so only the
    // hottest few segments can be cached).
    cfg.num_items = std::min<std::size_t>(cfg.num_items, 500);
    cfg.lookup_origin_pool = 8;
    cfg.zipf_exponent = 1.3;
    // Short lifetime: cold links expire and free budget for the hot
    // segments (use refreshes a link's timer, so hot links persist).
    cfg.hybrid.bypass_lifetime = sim::SimTime::seconds(5);
    // Pace the lookups: a link installs only when its first fetch
    // completes, so back-to-back repeats of a hot item would all miss it.
    cfg.op_spacing = sim::SimTime::millis(50);
    const auto r = exp::run_hybrid_experiment(cfg);
    table.row()
        .cell(enabled ? "on" : "off")
        .cell(r.lookup_latency_ms.mean(), 1)
        .cell(static_cast<double>(r.connum()) /
                  static_cast<double>(r.lookups.issued),
              2)
        .cell(r.network.class_messages(proto::TrafficClass::kQuery))
        .cell(r.bypass_uses)
        .cell(r.lookups.failure_ratio(), 4);
    exp::collect_run_result(reporter.metrics(),
                            enabled ? "bypass_on" : "bypass_off", r);
  }
  table.print(std::cout);
  reporter.add_table("ablation_bypass_links", table);
  return reporter.write() ? 0 : 1;
}
