// Fig. 4a-f: probability density of data items per peer under the two
// data-placement schemes (Section 3.4), for p_s in {0, 0.4, 0.9}.
//
// Scheme 1 ("t-peer stores") concentrates cross-segment items on t-peers:
// as p_s grows, most peers end up empty and a few t-peers hoard hundreds of
// items.  Scheme 2 ("random spread") hands items down the s-network and
// keeps the distribution tight.
#include <cstdio>

#include "bench_util.hpp"
#include "stats/histogram.hpp"
#include "stats/table.hpp"

using namespace hp2p;

namespace {

void run_scheme(const bench::Scale& scale, hybrid::PlacementScheme scheme,
                const char* label, bench::Reporter& reporter,
                const char* metric_prefix) {
  stats::Table table{{"p_s", "empty_frac", "p50", "p90", "max",
                      "mean_items"}};
  for (double ps : {0.0, 0.4, 0.9}) {
    stats::CountDistribution dist;
    for (std::size_t r = 0; r < scale.replicas; ++r) {
      auto cfg = bench::base_config(scale, r);
      cfg.hybrid.ps = ps;
      cfg.hybrid.placement = scheme;
      cfg.num_lookups = 0;
      const auto result = exp::run_hybrid_experiment(cfg);
      for (const auto n : result.items_per_peer) dist.add(n);
    }
    // Percentiles from the exact integer distribution.
    std::uint64_t p50 = 0;
    std::uint64_t p90 = 0;
    for (std::uint64_t v = 0; v <= dist.max_value(); ++v) {
      if (dist.fraction_below(v + 1) >= 0.5 && p50 == 0) p50 = v;
      if (dist.fraction_below(v + 1) >= 0.9 && p90 == 0) p90 = v;
    }
    const double mean =
        static_cast<double>(scale.items) /
        static_cast<double>(scale.peers);
    table.row()
        .cell(ps, 1)
        .cell(dist.fraction_zero(), 3)
        .cell(p50)
        .cell(p90)
        .cell(dist.max_value())
        .cell(mean, 2);
    const std::string base =
        std::string{metric_prefix} + ".ps_" + bench::metric_num(ps);
    reporter.metrics().set(base + ".empty_frac", dist.fraction_zero());
    reporter.metrics().set(base + ".max_items", dist.max_value());
  }
  std::printf("\n--- placement scheme: %s ---\n", label);
  table.print(std::cout);
  reporter.add_table(metric_prefix, table);
}

void print_pdf(const bench::Scale& scale, double ps,
               hybrid::PlacementScheme scheme, const char* label) {
  stats::CountDistribution dist;
  auto cfg = bench::base_config(scale, 0);
  cfg.hybrid.ps = ps;
  cfg.hybrid.placement = scheme;
  cfg.num_lookups = 0;
  const auto result = exp::run_hybrid_experiment(cfg);
  for (const auto n : result.items_per_peer) dist.add(n);
  std::printf("\npdf, %s, p_s=%.1f (bin -> mass):\n", label, ps);
  for (const auto& bin : dist.to_pdf(10)) {
    std::printf("  [%5.0f, %5.0f): %.4f %s\n", bin.lo, bin.hi, bin.mass,
                std::string(static_cast<std::size_t>(bin.mass * 60), '#')
                    .c_str());
  }
}

}  // namespace

int main() {
  const auto scale = bench::scale_from_env();
  bench::Reporter reporter{"fig4_data_distribution", scale};
  bench::print_header(
      "Fig. 4 -- pdf of data items per peer, two placement schemes",
      "scheme 1: at p_s=0.9 ~85% of peers empty, hot t-peers hold 100s; "
      "scheme 2: empty fraction collapses (paper: 12%), load evens out",
      scale);

  run_scheme(scale, hybrid::PlacementScheme::kTPeerStores,
             "scheme 1 (t-peer stores)", reporter, "scheme1_tpeer_stores");
  run_scheme(scale, hybrid::PlacementScheme::kRandomSpread,
             "scheme 2 (random spread)", reporter, "scheme2_random_spread");

  // Full pdfs for the p_s = 0.9 panels (Fig. 4c vs 4f).
  print_pdf(scale, 0.9, hybrid::PlacementScheme::kTPeerStores,
            "scheme 1 (Fig. 4c)");
  print_pdf(scale, 0.9, hybrid::PlacementScheme::kRandomSpread,
            "scheme 2 (Fig. 4f)");
  return reporter.write() ? 0 : 1;
}
